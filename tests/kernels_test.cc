#include "numeric/kernels.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/skipgram.h"
#include "graph/alias_table.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

// Adversarial lengths around every unroll boundary: empty, single element,
// exact multiples of the 4-wide unroll, one off either side, and large sizes
// with and without tails.
const size_t kLengths[] = {0,  1,  2,  3,  4,   5,   7,   8,    9,    15, 16,
                           17, 31, 63, 64, 65, 127, 128, 129, 1000, 1023};

// Mixed-magnitude values so reordering the summation would actually change
// the result (catches an accidental order change, not just a wrong formula).
std::vector<double> MixedMagnitude(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng->NextUniform(-6.0, 6.0));
    v[i] = rng->NextUniform(-1.0, 1.0) * mag;
  }
  return v;
}

// Restores thread count and sigmoid mode even when an assertion fails.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_mode_ = kernels::GetSigmoidMode(); }
  void TearDown() override {
    SetThreadCount(0);
    kernels::SetSigmoidMode(saved_mode_);
  }
  kernels::SigmoidMode saved_mode_ = kernels::SigmoidMode::kTabulated;
};

TEST_F(KernelsTest, DotMatchesScalarRefBitForBit) {
  Rng rng(7);
  for (size_t n : kLengths) {
    const std::vector<double> a = MixedMagnitude(n, &rng);
    const std::vector<double> b = MixedMagnitude(n, &rng);
    EXPECT_EQ(kernels::Dot(a.data(), b.data(), n),
              kernels::DotScalarRef(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, DotMatchesScalarRefOnUnalignedPointers) {
  Rng rng(11);
  for (size_t n : kLengths) {
    // One extra leading element, then read from data() + 1 so the kernel
    // sees a pointer off the vector's natural alignment.
    const std::vector<double> a = MixedMagnitude(n + 1, &rng);
    const std::vector<double> b = MixedMagnitude(n + 1, &rng);
    EXPECT_EQ(kernels::Dot(a.data() + 1, b.data() + 1, n),
              kernels::DotScalarRef(a.data() + 1, b.data() + 1, n))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, SumMatchesScalarRefBitForBit) {
  Rng rng(13);
  for (size_t n : kLengths) {
    const std::vector<double> a = MixedMagnitude(n + 1, &rng);
    EXPECT_EQ(kernels::Sum(a.data(), n), kernels::SumScalarRef(a.data(), n))
        << "n=" << n;
    EXPECT_EQ(kernels::Sum(a.data() + 1, n),
              kernels::SumScalarRef(a.data() + 1, n))
        << "unaligned n=" << n;
  }
}

TEST_F(KernelsTest, AxpyMatchesScalarRefBitForBit) {
  Rng rng(17);
  for (size_t n : kLengths) {
    const std::vector<double> x = MixedMagnitude(n, &rng);
    const std::vector<double> base = MixedMagnitude(n, &rng);
    const double alpha = rng.NextUniform(-2.0, 2.0);
    std::vector<double> y1 = base;
    std::vector<double> y2 = base;
    kernels::Axpy(alpha, x.data(), y1.data(), n);
    kernels::AxpyScalarRef(alpha, x.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "n=" << n;
  }
}

TEST_F(KernelsTest, ScaleAddMatchesScalarRefBitForBit) {
  Rng rng(19);
  for (size_t n : kLengths) {
    const std::vector<double> x = MixedMagnitude(n, &rng);
    const std::vector<double> base = MixedMagnitude(n, &rng);
    const double alpha = rng.NextUniform(-2.0, 2.0);
    const double beta = rng.NextUniform(-2.0, 2.0);
    std::vector<double> y1 = base;
    std::vector<double> y2 = base;
    kernels::ScaleAdd(y1.data(), alpha, beta, x.data(), n);
    kernels::ScaleAddScalarRef(y2.data(), alpha, beta, x.data(), n);
    EXPECT_EQ(y1, y2) << "n=" << n;
  }
}

TEST_F(KernelsTest, FusedDotSigmoidUpdateMatchesScalarRefBitForBit) {
  for (kernels::SigmoidMode mode :
       {kernels::SigmoidMode::kTabulated, kernels::SigmoidMode::kExact}) {
    kernels::SetSigmoidMode(mode);
    Rng rng(23);
    for (size_t n : kLengths) {
      const std::vector<double> w = MixedMagnitude(n, &rng);
      const std::vector<double> c_base = MixedMagnitude(n, &rng);
      const std::vector<double> g_base = MixedMagnitude(n, &rng);
      const double label = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
      const double lr = rng.NextUniform(0.001, 0.05);
      std::vector<double> c1 = c_base, c2 = c_base;
      std::vector<double> g1 = g_base, g2 = g_base;
      const double r1 = kernels::FusedDotSigmoidUpdate(w.data(), c1.data(),
                                                       g1.data(), n, label, lr);
      const double r2 = kernels::FusedDotSigmoidUpdateScalarRef(
          w.data(), c2.data(), g2.data(), n, label, lr);
      EXPECT_EQ(r1, r2) << "n=" << n;
      EXPECT_EQ(c1, c2) << "n=" << n;
      EXPECT_EQ(g1, g2) << "n=" << n;
    }
  }
}

TEST_F(KernelsTest, ReplicatedMeanMatchesExplicitShardOrderSum) {
  Rng rng(29);
  for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8}}) {
    const size_t n = 129;
    const std::vector<double> base = MixedMagnitude(n, &rng);
    std::vector<double> mean = base;
    kernels::ReplicatedMean(mean.data(), count, 1.0 / count, n);
    for (size_t i = 0; i < n; ++i) {
      // The merge accumulates the same replica value `count` times in shard
      // order, then scales; ReplicatedMean must reproduce that exactly.
      double acc = base[i];
      for (size_t s = 1; s < count; ++s) acc += base[i];
      EXPECT_EQ(mean[i], acc * (1.0 / count)) << "count=" << count << " i=" << i;
    }
  }
}

// --- Sigmoid -----------------------------------------------------------------

TEST_F(KernelsTest, TabulatedSigmoidWithinErrorBoundOfExact) {
  double max_err = 0.0;
  for (double x = -10.0; x <= 10.0; x += 1e-3) {
    max_err = std::max(
        max_err, std::abs(kernels::TabulatedSigmoid(x) -
                          kernels::ExactSigmoid(x)));
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST_F(KernelsTest, TabulatedSigmoidClampsExactlyOutsideClipRange) {
  EXPECT_EQ(kernels::TabulatedSigmoid(kernels::kSigmoidClip + 1e-9), 1.0);
  EXPECT_EQ(kernels::TabulatedSigmoid(-kernels::kSigmoidClip - 1e-9), 0.0);
  EXPECT_EQ(kernels::TabulatedSigmoid(100.0), 1.0);
  EXPECT_EQ(kernels::TabulatedSigmoid(-100.0), 0.0);
  // Interior values stay strictly inside (0, 1).
  EXPECT_GT(kernels::TabulatedSigmoid(0.0), 0.4);
  EXPECT_LT(kernels::TabulatedSigmoid(0.0), 0.6);
}

TEST_F(KernelsTest, ExactSigmoidIsOverflowSafe) {
  EXPECT_EQ(kernels::ExactSigmoid(1000.0), 1.0);
  EXPECT_EQ(kernels::ExactSigmoid(-1000.0), 0.0);
  EXPECT_NEAR(kernels::ExactSigmoid(0.0), 0.5, 1e-15);
  EXPECT_NEAR(kernels::ExactSigmoid(2.0) + kernels::ExactSigmoid(-2.0), 1.0,
              1e-15);
}

TEST_F(KernelsTest, TrainingSigmoidDispatchesOnMode) {
  kernels::SetSigmoidMode(kernels::SigmoidMode::kExact);
  EXPECT_EQ(kernels::GetSigmoidMode(), kernels::SigmoidMode::kExact);
  EXPECT_EQ(kernels::TrainingSigmoid(0.7), kernels::ExactSigmoid(0.7));
  kernels::SetSigmoidMode(kernels::SigmoidMode::kTabulated);
  EXPECT_EQ(kernels::GetSigmoidMode(), kernels::SigmoidMode::kTabulated);
  EXPECT_EQ(kernels::TrainingSigmoid(0.7), kernels::TabulatedSigmoid(0.7));
}

// --- AliasTable --------------------------------------------------------------

// Chi-squared goodness of fit against the target distribution. With 3
// degrees of freedom the p = 0.001 critical value is 16.27; the generous
// threshold keeps the test deterministic-stable (fixed seed) while still
// failing loudly on any construction bug that skews the table.
TEST_F(KernelsTest, AliasTableSamplesMatchWeightsChiSquared) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const double total = 10.0;
  AliasTable table(weights);
  Rng rng(12345);
  const size_t draws = 200000;
  std::vector<size_t> counts(weights.size(), 0);
  for (size_t i = 0; i < draws; ++i) ++counts[table.Sample(&rng)];

  double chi2 = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = draws * weights[i] / total;
    const double diff = static_cast<double>(counts[i]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 16.27) << "counts: " << counts[0] << " " << counts[1] << " "
                         << counts[2] << " " << counts[3];
}

TEST_F(KernelsTest, AliasTableHandlesZeroWeightEntries) {
  const std::vector<double> weights = {0.0, 5.0, 0.0, 5.0};
  AliasTable table(weights);
  Rng rng(99);
  for (size_t i = 0; i < 10000; ++i) {
    const size_t s = table.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

// --- Skip-gram integration ---------------------------------------------------

std::vector<std::vector<uint32_t>> MakeCorpus(uint32_t used_vocab,
                                              size_t sentences, size_t length,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> corpus(sentences);
  for (auto& sentence : corpus) {
    sentence.resize(length);
    for (auto& tok : sentence) {
      tok = static_cast<uint32_t>(rng.NextBelow(used_vocab));
    }
  }
  return corpus;
}

TEST_F(KernelsTest, NegativeSamplerBuiltExactlyOncePerTrain) {
  obs::Counter& builds =
      obs::MetricsRegistry::Instance().GetCounter("skipgram.sampler_builds");
  SkipGramConfig config;
  config.dim = 8;
  config.epochs = 3;  // more epochs than one: the build must not repeat
  config.num_shards = 4;
  SkipGramTrainer trainer(16, config);
  const auto corpus = MakeCorpus(16, 6, 20, 5);
  const uint64_t before = builds.value();
  Rng rng(42);
  trainer.Train(corpus, &rng);
  EXPECT_EQ(builds.value() - before, 1u);
}

// The dirty-row merge must reproduce the full-matrix merge bit-for-bit: with
// a vocab much larger than the tokens actually used, most rows stay clean
// and take the ReplicatedMean path, which is provably identical to averaging
// the untouched (hence equal) replica copies.
TEST_F(KernelsTest, DirtyRowMergeMatchesFullMatrixMergeBitForBit) {
  const size_t vocab = 64;
  const uint32_t used = 12;  // rows [12, 64) stay clean in every epoch
  const auto corpus = MakeCorpus(used, 8, 25, 77);

  auto train = [&](bool full_matrix_merge) {
    SkipGramConfig config;
    config.dim = 16;
    config.epochs = 2;
    config.num_shards = 4;
    config.full_matrix_merge = full_matrix_merge;
    SkipGramTrainer trainer(vocab, config);
    Rng rng(7);
    trainer.Train(corpus, &rng);
    return trainer.embeddings();
  };

  obs::Counter& clean = obs::MetricsRegistry::Instance().GetCounter(
      "skipgram.merge.clean_rows");
  const uint64_t clean_before = clean.value();
  const Matrix dirty_path = train(false);
  // The dirty-row run must actually exercise the clean-row fast path.
  EXPECT_GT(clean.value(), clean_before);
  const Matrix full_path = train(true);

  ASSERT_EQ(dirty_path.rows(), full_path.rows());
  ASSERT_EQ(dirty_path.cols(), full_path.cols());
  for (size_t r = 0; r < dirty_path.rows(); ++r) {
    for (size_t c = 0; c < dirty_path.cols(); ++c) {
      EXPECT_EQ(dirty_path(r, c), full_path(r, c)) << r << "," << c;
    }
  }
}

TEST_F(KernelsTest, ShardedTrainingBitIdenticalAcrossThreadCounts) {
  const auto corpus = MakeCorpus(24, 10, 30, 123);
  auto train = [&] {
    SkipGramConfig config;
    config.dim = 16;
    config.epochs = 2;
    config.num_shards = 4;
    SkipGramTrainer trainer(24, config);
    Rng rng(9);
    trainer.Train(corpus, &rng);
    return trainer.embeddings();
  };

  SetThreadCount(1);
  const Matrix one = train();
  for (size_t threads : {size_t{2}, size_t{4}}) {
    SetThreadCount(threads);
    const Matrix many = train();
    ASSERT_EQ(one.rows(), many.rows());
    ASSERT_EQ(one.cols(), many.cols());
    for (size_t r = 0; r < one.rows(); ++r) {
      for (size_t c = 0; c < one.cols(); ++c) {
        EXPECT_EQ(one(r, c), many(r, c))
            << "threads=" << threads << " " << r << "," << c;
      }
    }
  }
}

}  // namespace
}  // namespace tg
