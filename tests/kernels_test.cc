#include "numeric/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/skipgram.h"
#include "graph/alias_table.h"
#include "numeric/kernel_backend.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

// Adversarial lengths around every unroll boundary: empty, single element,
// exact multiples of the 4-wide unroll, one off either side, and large sizes
// with and without tails.
const size_t kLengths[] = {0,  1,  2,  3,  4,   5,   7,   8,    9,    15, 16,
                           17, 31, 63, 64, 65, 127, 128, 129, 1000, 1023};

// Mixed-magnitude values so reordering the summation would actually change
// the result (catches an accidental order change, not just a wrong formula).
std::vector<double> MixedMagnitude(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng->NextUniform(-6.0, 6.0));
    v[i] = rng->NextUniform(-1.0, 1.0) * mag;
  }
  return v;
}

// Restores thread count, sigmoid mode, and kernel backend even when an
// assertion fails. The bit-for-bit tests below assert kernel order, which
// only the scalar backend guarantees, so every test starts pinned to it; the
// backend-matrix tests re-force other backends themselves.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_mode_ = kernels::GetSigmoidMode();
    saved_backend_ = kernels::ActiveBackendName();
    ASSERT_TRUE(kernels::SetActiveBackend("scalar"));
  }
  void TearDown() override {
    SetThreadCount(0);
    kernels::SetSigmoidMode(saved_mode_);
    kernels::SetActiveBackend(saved_backend_);
  }
  kernels::SigmoidMode saved_mode_ = kernels::SigmoidMode::kTabulated;
  std::string saved_backend_ = "scalar";
};

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

TEST_F(KernelsTest, DotMatchesScalarRefBitForBit) {
  Rng rng(7);
  for (size_t n : kLengths) {
    const std::vector<double> a = MixedMagnitude(n, &rng);
    const std::vector<double> b = MixedMagnitude(n, &rng);
    EXPECT_EQ(kernels::Dot(a.data(), b.data(), n),
              kernels::DotScalarRef(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, DotMatchesScalarRefOnUnalignedPointers) {
  Rng rng(11);
  for (size_t n : kLengths) {
    // One extra leading element, then read from data() + 1 so the kernel
    // sees a pointer off the vector's natural alignment.
    const std::vector<double> a = MixedMagnitude(n + 1, &rng);
    const std::vector<double> b = MixedMagnitude(n + 1, &rng);
    EXPECT_EQ(kernels::Dot(a.data() + 1, b.data() + 1, n),
              kernels::DotScalarRef(a.data() + 1, b.data() + 1, n))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, SumMatchesScalarRefBitForBit) {
  Rng rng(13);
  for (size_t n : kLengths) {
    const std::vector<double> a = MixedMagnitude(n + 1, &rng);
    EXPECT_EQ(kernels::Sum(a.data(), n), kernels::SumScalarRef(a.data(), n))
        << "n=" << n;
    EXPECT_EQ(kernels::Sum(a.data() + 1, n),
              kernels::SumScalarRef(a.data() + 1, n))
        << "unaligned n=" << n;
  }
}

TEST_F(KernelsTest, AxpyMatchesScalarRefBitForBit) {
  Rng rng(17);
  for (size_t n : kLengths) {
    const std::vector<double> x = MixedMagnitude(n, &rng);
    const std::vector<double> base = MixedMagnitude(n, &rng);
    const double alpha = rng.NextUniform(-2.0, 2.0);
    std::vector<double> y1 = base;
    std::vector<double> y2 = base;
    kernels::Axpy(alpha, x.data(), y1.data(), n);
    kernels::AxpyScalarRef(alpha, x.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "n=" << n;
  }
}

TEST_F(KernelsTest, ScaleAddMatchesScalarRefBitForBit) {
  Rng rng(19);
  for (size_t n : kLengths) {
    const std::vector<double> x = MixedMagnitude(n, &rng);
    const std::vector<double> base = MixedMagnitude(n, &rng);
    const double alpha = rng.NextUniform(-2.0, 2.0);
    const double beta = rng.NextUniform(-2.0, 2.0);
    std::vector<double> y1 = base;
    std::vector<double> y2 = base;
    kernels::ScaleAdd(y1.data(), alpha, beta, x.data(), n);
    kernels::ScaleAddScalarRef(y2.data(), alpha, beta, x.data(), n);
    EXPECT_EQ(y1, y2) << "n=" << n;
  }
}

TEST_F(KernelsTest, FusedDotSigmoidUpdateMatchesScalarRefBitForBit) {
  for (kernels::SigmoidMode mode :
       {kernels::SigmoidMode::kTabulated, kernels::SigmoidMode::kExact}) {
    kernels::SetSigmoidMode(mode);
    Rng rng(23);
    for (size_t n : kLengths) {
      const std::vector<double> w = MixedMagnitude(n, &rng);
      const std::vector<double> c_base = MixedMagnitude(n, &rng);
      const std::vector<double> g_base = MixedMagnitude(n, &rng);
      const double label = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
      const double lr = rng.NextUniform(0.001, 0.05);
      std::vector<double> c1 = c_base, c2 = c_base;
      std::vector<double> g1 = g_base, g2 = g_base;
      const double r1 = kernels::FusedDotSigmoidUpdate(w.data(), c1.data(),
                                                       g1.data(), n, label, lr);
      const double r2 = kernels::FusedDotSigmoidUpdateScalarRef(
          w.data(), c2.data(), g2.data(), n, label, lr);
      EXPECT_EQ(r1, r2) << "n=" << n;
      EXPECT_EQ(c1, c2) << "n=" << n;
      EXPECT_EQ(g1, g2) << "n=" << n;
    }
  }
}

TEST_F(KernelsTest, ReplicatedMeanMatchesExplicitShardOrderSum) {
  Rng rng(29);
  for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{8}}) {
    const size_t n = 129;
    const std::vector<double> base = MixedMagnitude(n, &rng);
    std::vector<double> mean = base;
    kernels::ReplicatedMean(mean.data(), count, 1.0 / count, n);
    for (size_t i = 0; i < n; ++i) {
      // The merge accumulates the same replica value `count` times in shard
      // order, then scales; ReplicatedMean must reproduce that exactly.
      double acc = base[i];
      for (size_t s = 1; s < count; ++s) acc += base[i];
      EXPECT_EQ(mean[i], acc * (1.0 / count)) << "count=" << count << " i=" << i;
    }
  }
}

// --- Backend dispatch --------------------------------------------------------

TEST_F(KernelsTest, DispatchKnobsBehave) {
  const std::vector<std::string> names = kernels::AvailableBackendNames();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");

  // Forcing an unknown backend fails without changing the active table.
  ASSERT_TRUE(kernels::SetActiveBackend("scalar"));
  EXPECT_FALSE(kernels::SetActiveBackend("not-a-backend"));
  EXPECT_STREQ(kernels::ActiveBackendName(), "scalar");

  // Every advertised backend can be forced, reports itself, and "auto"
  // resolves to the widest one (the back of the list).
  for (const std::string& name : names) {
    ASSERT_TRUE(kernels::SetActiveBackend(name)) << name;
    EXPECT_EQ(kernels::ActiveBackendName(), name);
  }
  ASSERT_TRUE(kernels::SetActiveBackend("auto"));
  EXPECT_EQ(kernels::ActiveBackendName(), names.back());

  // Selecting a backend records it in the metrics registry.
  EXPECT_GE(obs::MetricsRegistry::Instance()
                .GetCounter("numeric.backend.scalar")
                .value(),
            1u);
}

// Bit-level anchors captured from the pre-dispatch (seed) kernel layer: the
// scalar backend compiles the same fixed-order bodies under the same base
// architecture flags, so TG_ISA=scalar must keep reproducing these exact
// doubles on every host. A failure here means the exact-mode contract broke.
TEST_F(KernelsTest, ScalarBackendMatchesSeedGoldenBits) {
  Rng rng(20240601);
  const size_t n = 129;
  const std::vector<double> a = MixedMagnitude(n, &rng);
  const std::vector<double> b = MixedMagnitude(n, &rng);
  EXPECT_EQ(BitsOf(kernels::Dot(a.data(), b.data(), n)), 0x41d10a3000996dbdULL);
  EXPECT_EQ(BitsOf(kernels::Sum(a.data(), n)), 0x41372f16629f7b9fULL);

  std::vector<double> y = b;
  kernels::Axpy(0.75, a.data(), y.data(), n);
  EXPECT_EQ(BitsOf(kernels::Sum(y.data(), n)), 0x413843130b2a8f9cULL);
  kernels::ScaleAdd(y.data(), 0.9, -0.1, a.data(), n);
  EXPECT_EQ(BitsOf(kernels::Sum(y.data(), n)), 0x413384754cfcc1afULL);

  kernels::SetSigmoidMode(kernels::SigmoidMode::kTabulated);
  Rng rng2(77);
  std::vector<double> w(n), c(n), grad(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    w[i] = rng2.NextUniform(-1.0, 1.0);
    c[i] = rng2.NextUniform(-1.0, 1.0);
  }
  const double g =
      kernels::FusedDotSigmoidUpdate(w.data(), c.data(), grad.data(), n, 1.0,
                                     0.025);
  EXPECT_EQ(BitsOf(g), 0x3f75d0f73511a4aaULL);
  EXPECT_EQ(BitsOf(kernels::Sum(c.data(), n)), 0xc025737e517762c0ULL);
  EXPECT_EQ(BitsOf(kernels::Sum(grad.data(), n)), 0xbfad5b5d17021b38ULL);
}

constexpr double kEps = 2.220446049250313e-16;  // 2^-52

// The documented reduction envelope (docs/performance.md): a vector backend
// may reassociate a length-n reduction and contract to FMA, but must stay
// within 4 * (n + 16) * eps relative to the sum of absolute terms.
double ReductionTolerance(double abs_sum, size_t n) {
  return 4.0 * static_cast<double>(n + 16) * kEps * abs_sum;
}

TEST_F(KernelsTest, EveryBackendDotAndSumWithinEnvelopeOfScalarRef) {
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(7);
    for (size_t n : kLengths) {
      // One extra leading element so data() + 1 exercises unaligned loads.
      const std::vector<double> a = MixedMagnitude(n + 1, &rng);
      const std::vector<double> b = MixedMagnitude(n + 1, &rng);
      for (size_t off : {size_t{0}, size_t{1}}) {
        double abs_dot = 0.0, abs_sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
          abs_dot += std::abs(a[off + i] * b[off + i]);
          abs_sum += std::abs(a[off + i]);
        }
        EXPECT_NEAR(kernels::Dot(a.data() + off, b.data() + off, n),
                    kernels::DotScalarRef(a.data() + off, b.data() + off, n),
                    ReductionTolerance(abs_dot, n))
            << backend << " n=" << n << " off=" << off;
        EXPECT_NEAR(kernels::Sum(a.data() + off, n),
                    kernels::SumScalarRef(a.data() + off, n),
                    ReductionTolerance(abs_sum, n))
            << backend << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST_F(KernelsTest, EveryBackendAxpyScaleAddWithinEnvelopeOfScalarRef) {
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(17);
    for (size_t n : kLengths) {
      const std::vector<double> x = MixedMagnitude(n, &rng);
      const std::vector<double> base = MixedMagnitude(n, &rng);
      const double alpha = rng.NextUniform(-2.0, 2.0);
      const double beta = rng.NextUniform(-2.0, 2.0);

      std::vector<double> y1 = base, y2 = base;
      kernels::Axpy(alpha, x.data(), y1.data(), n);
      kernels::AxpyScalarRef(alpha, x.data(), y2.data(), n);
      for (size_t i = 0; i < n; ++i) {
        // FMA contraction changes each element by at most one rounding of
        // the product term.
        const double tol =
            4.0 * kEps * (std::abs(alpha * x[i]) + std::abs(base[i]));
        EXPECT_NEAR(y1[i], y2[i], tol) << backend << " n=" << n << " i=" << i;
      }

      y1 = base;
      y2 = base;
      kernels::ScaleAdd(y1.data(), alpha, beta, x.data(), n);
      kernels::ScaleAddScalarRef(y2.data(), alpha, beta, x.data(), n);
      for (size_t i = 0; i < n; ++i) {
        const double tol = 4.0 * kEps * (std::abs(alpha * base[i]) +
                                         std::abs(beta * x[i]));
        EXPECT_NEAR(y1[i], y2[i], tol) << backend << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(KernelsTest, EveryBackendElementwiseBitIdentical) {
  // Add/Sub/Mul/Scale perform one IEEE operation per element in every
  // backend, so unlike the reductions they carry no envelope: exact equality
  // across the whole matrix of backends and lengths.
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(31);
    for (size_t n : kLengths) {
      const std::vector<double> x = MixedMagnitude(n + 1, &rng);
      const std::vector<double> base = MixedMagnitude(n + 1, &rng);
      const double s = rng.NextUniform(-2.0, 2.0);
      for (size_t off : {size_t{0}, size_t{1}}) {
        std::vector<double> got = base;
        std::vector<double> want = base;
        kernels::Add(got.data() + off, x.data() + off, n);
        for (size_t i = 0; i < n; ++i) want[off + i] += x[off + i];
        EXPECT_EQ(got, want) << backend << " Add n=" << n << " off=" << off;

        got = base;
        want = base;
        kernels::Sub(got.data() + off, x.data() + off, n);
        for (size_t i = 0; i < n; ++i) want[off + i] -= x[off + i];
        EXPECT_EQ(got, want) << backend << " Sub n=" << n << " off=" << off;

        got = base;
        want = base;
        kernels::Mul(got.data() + off, x.data() + off, n);
        for (size_t i = 0; i < n; ++i) want[off + i] *= x[off + i];
        EXPECT_EQ(got, want) << backend << " Mul n=" << n << " off=" << off;

        got = base;
        want = base;
        kernels::Scale(got.data() + off, s, n);
        for (size_t i = 0; i < n; ++i) want[off + i] *= s;
        EXPECT_EQ(got, want) << backend << " Scale n=" << n << " off=" << off;
      }
    }
  }
}

TEST_F(KernelsTest, EveryBackendReplicatedMeanBitIdentical) {
  // ReplicatedMean must preserve the per-element accumulate-count-times
  // sequence in every backend (the dirty-row merge equivalence depends on
  // it), which also makes it exactly equal across backends.
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(29);
    for (size_t count : {size_t{1}, size_t{3}, size_t{8}}) {
      for (size_t n : {size_t{5}, size_t{64}, size_t{129}}) {
        const std::vector<double> base = MixedMagnitude(n, &rng);
        std::vector<double> mean = base;
        kernels::ReplicatedMean(mean.data(), count, 1.0 / count, n);
        for (size_t i = 0; i < n; ++i) {
          double acc = base[i];
          for (size_t s = 1; s < count; ++s) acc += base[i];
          EXPECT_EQ(mean[i], acc * (1.0 / count))
              << backend << " count=" << count << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST_F(KernelsTest, MulAddScalarMatchesMulThenAddBitForBit) {
  // The scalar backend must perform the unfused two-rounding sequence
  // z[i] += x[i] * y[i]; autograd's TG_ISA=scalar bit-identity (the fused
  // AccumulateGradMulAdd vs a Hadamard temporary) rests on this.
  Rng rng(37);
  for (size_t n : kLengths) {
    const std::vector<double> x = MixedMagnitude(n, &rng);
    const std::vector<double> y = MixedMagnitude(n, &rng);
    const std::vector<double> base = MixedMagnitude(n, &rng);
    std::vector<double> z1 = base, z2 = base;
    kernels::MulAdd(z1.data(), x.data(), y.data(), n);
    kernels::MulAddScalarRef(z2.data(), x.data(), y.data(), n);
    EXPECT_EQ(z1, z2) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      const double want = base[i] + x[i] * y[i];
      EXPECT_EQ(z1[i], want) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(KernelsTest, EveryBackendMulAddWithinEnvelopeOfScalarRef) {
  // Vector backends may contract x*y+z to a single FMA rounding.
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(37);
    for (size_t n : kLengths) {
      const std::vector<double> x = MixedMagnitude(n + 1, &rng);
      const std::vector<double> y = MixedMagnitude(n + 1, &rng);
      const std::vector<double> base = MixedMagnitude(n + 1, &rng);
      for (size_t off : {size_t{0}, size_t{1}}) {
        std::vector<double> z1 = base, z2 = base;
        kernels::MulAdd(z1.data() + off, x.data() + off, y.data() + off, n);
        kernels::MulAddScalarRef(z2.data() + off, x.data() + off,
                                 y.data() + off, n);
        for (size_t i = 0; i < n; ++i) {
          const double tol = 4.0 * kEps * (std::abs(x[off + i] * y[off + i]) +
                                           std::abs(base[off + i]));
          EXPECT_NEAR(z1[off + i], z2[off + i], tol)
              << backend << " n=" << n << " off=" << off << " i=" << i;
        }
      }
    }
  }
}

// Builds a scatter-accumulate fixture: n row indices into a value array of
// n + 7 entries (gathers are not the identity), codes striped over `bins`
// with repeats so multiple rows land in one bin.
template <typename Code>
void CheckHistAccumulateEveryBackend(size_t bins, uint64_t seed) {
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(seed);
    for (size_t n : kLengths) {
      const std::vector<double> values = MixedMagnitude(n + 7, &rng);
      std::vector<Code> codes(n + 7);
      std::vector<size_t> rows(n);
      for (size_t i = 0; i < n + 7; ++i) {
        codes[i] = static_cast<Code>(rng.NextBelow(bins));
      }
      for (size_t i = 0; i < n; ++i) rows[i] = rng.NextBelow(n + 7);
      std::vector<double> sums1(bins, 0.0), counts1(bins, 0.0);
      std::vector<double> sums2(bins, 0.0), counts2(bins, 0.0);
      kernels::HistAccumulate(codes.data(), rows.data(), n, values.data(),
                              sums1.data(), counts1.data());
      kernels::HistAccumulateScalarRef(codes.data(), rows.data(), n,
                                       values.data(), sums2.data(),
                                       counts2.data());
      // Scatter-accumulate is a serial dependence chain in index order in
      // EVERY backend, so this is exact equality, not an envelope: the hist
      // tree engine must not change with TG_ISA.
      EXPECT_EQ(sums1, sums2) << backend << " n=" << n;
      EXPECT_EQ(counts1, counts2) << backend << " n=" << n;
    }
  }
}

TEST_F(KernelsTest, EveryBackendHistAccumulateU8BitIdentical) {
  CheckHistAccumulateEveryBackend<uint8_t>(256, 41);
  CheckHistAccumulateEveryBackend<uint8_t>(3, 43);  // heavy bin collisions
}

TEST_F(KernelsTest, EveryBackendHistAccumulateU16BitIdentical) {
  CheckHistAccumulateEveryBackend<uint16_t>(1024, 47);
}

TEST_F(KernelsTest, EveryBackendFusedUpdateWithinEnvelopeOfScalarRef) {
  // Exact sigmoid: the tabulated form is a step function, so the envelope
  // difference in the dot could flip a table bucket and amplify into an O(1)
  // difference in g -- a mode question, not a backend bug. Moderate
  // magnitudes keep the dot's absolute error tiny.
  kernels::SetSigmoidMode(kernels::SigmoidMode::kExact);
  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    Rng rng(23);
    for (size_t n : kLengths) {
      std::vector<double> w(n), c_base(n), g_base(n);
      for (size_t i = 0; i < n; ++i) {
        w[i] = rng.NextUniform(-1.0, 1.0);
        c_base[i] = rng.NextUniform(-1.0, 1.0);
        g_base[i] = rng.NextUniform(-1.0, 1.0);
      }
      const double label = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
      const double lr = rng.NextUniform(0.001, 0.05);
      std::vector<double> c1 = c_base, c2 = c_base;
      std::vector<double> g1 = g_base, g2 = g_base;
      const double r1 = kernels::FusedDotSigmoidUpdate(w.data(), c1.data(),
                                                       g1.data(), n, label, lr);
      const double r2 = kernels::FusedDotSigmoidUpdateScalarRef(
          w.data(), c2.data(), g2.data(), n, label, lr);
      EXPECT_NEAR(r1, r2, 1e-10) << backend << " n=" << n;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(c1[i], c2[i], 1e-10) << backend << " n=" << n << " i=" << i;
        EXPECT_NEAR(g1[i], g2[i], 1e-10) << backend << " n=" << n << " i=" << i;
      }
    }
  }
}

// --- Sigmoid -----------------------------------------------------------------

TEST_F(KernelsTest, TabulatedSigmoidWithinErrorBoundOfExact) {
  double max_err = 0.0;
  for (double x = -10.0; x <= 10.0; x += 1e-3) {
    max_err = std::max(
        max_err, std::abs(kernels::TabulatedSigmoid(x) -
                          kernels::ExactSigmoid(x)));
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST_F(KernelsTest, TabulatedSigmoidClampsExactlyOutsideClipRange) {
  EXPECT_EQ(kernels::TabulatedSigmoid(kernels::kSigmoidClip + 1e-9), 1.0);
  EXPECT_EQ(kernels::TabulatedSigmoid(-kernels::kSigmoidClip - 1e-9), 0.0);
  EXPECT_EQ(kernels::TabulatedSigmoid(100.0), 1.0);
  EXPECT_EQ(kernels::TabulatedSigmoid(-100.0), 0.0);
  // Interior values stay strictly inside (0, 1).
  EXPECT_GT(kernels::TabulatedSigmoid(0.0), 0.4);
  EXPECT_LT(kernels::TabulatedSigmoid(0.0), 0.6);
}

TEST_F(KernelsTest, ExactSigmoidIsOverflowSafe) {
  EXPECT_EQ(kernels::ExactSigmoid(1000.0), 1.0);
  EXPECT_EQ(kernels::ExactSigmoid(-1000.0), 0.0);
  EXPECT_NEAR(kernels::ExactSigmoid(0.0), 0.5, 1e-15);
  EXPECT_NEAR(kernels::ExactSigmoid(2.0) + kernels::ExactSigmoid(-2.0), 1.0,
              1e-15);
}

TEST_F(KernelsTest, TrainingSigmoidDispatchesOnMode) {
  kernels::SetSigmoidMode(kernels::SigmoidMode::kExact);
  EXPECT_EQ(kernels::GetSigmoidMode(), kernels::SigmoidMode::kExact);
  EXPECT_EQ(kernels::TrainingSigmoid(0.7), kernels::ExactSigmoid(0.7));
  kernels::SetSigmoidMode(kernels::SigmoidMode::kTabulated);
  EXPECT_EQ(kernels::GetSigmoidMode(), kernels::SigmoidMode::kTabulated);
  EXPECT_EQ(kernels::TrainingSigmoid(0.7), kernels::TabulatedSigmoid(0.7));
}

// --- AliasTable --------------------------------------------------------------

// Chi-squared goodness of fit against the target distribution. With 3
// degrees of freedom the p = 0.001 critical value is 16.27; the generous
// threshold keeps the test deterministic-stable (fixed seed) while still
// failing loudly on any construction bug that skews the table.
TEST_F(KernelsTest, AliasTableSamplesMatchWeightsChiSquared) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const double total = 10.0;
  AliasTable table(weights);
  Rng rng(12345);
  const size_t draws = 200000;
  std::vector<size_t> counts(weights.size(), 0);
  for (size_t i = 0; i < draws; ++i) ++counts[table.Sample(&rng)];

  double chi2 = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = draws * weights[i] / total;
    const double diff = static_cast<double>(counts[i]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 16.27) << "counts: " << counts[0] << " " << counts[1] << " "
                         << counts[2] << " " << counts[3];
}

TEST_F(KernelsTest, AliasTableHandlesZeroWeightEntries) {
  const std::vector<double> weights = {0.0, 5.0, 0.0, 5.0};
  AliasTable table(weights);
  Rng rng(99);
  for (size_t i = 0; i < 10000; ++i) {
    const size_t s = table.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

// --- Skip-gram integration ---------------------------------------------------

std::vector<std::vector<uint32_t>> MakeCorpus(uint32_t used_vocab,
                                              size_t sentences, size_t length,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> corpus(sentences);
  for (auto& sentence : corpus) {
    sentence.resize(length);
    for (auto& tok : sentence) {
      tok = static_cast<uint32_t>(rng.NextBelow(used_vocab));
    }
  }
  return corpus;
}

TEST_F(KernelsTest, NegativeSamplerBuiltExactlyOncePerTrain) {
  obs::Counter& builds =
      obs::MetricsRegistry::Instance().GetCounter("skipgram.sampler_builds");
  SkipGramConfig config;
  config.dim = 8;
  config.epochs = 3;  // more epochs than one: the build must not repeat
  config.num_shards = 4;
  SkipGramTrainer trainer(16, config);
  const auto corpus = MakeCorpus(16, 6, 20, 5);
  const uint64_t before = builds.value();
  Rng rng(42);
  trainer.Train(corpus, &rng);
  EXPECT_EQ(builds.value() - before, 1u);
}

// The dirty-row merge must reproduce the full-matrix merge bit-for-bit: with
// a vocab much larger than the tokens actually used, most rows stay clean
// and take the ReplicatedMean path, which is provably identical to averaging
// the untouched (hence equal) replica copies.
TEST_F(KernelsTest, DirtyRowMergeMatchesFullMatrixMergeBitForBit) {
  const size_t vocab = 64;
  const uint32_t used = 12;  // rows [12, 64) stay clean in every epoch
  const auto corpus = MakeCorpus(used, 8, 25, 77);

  auto train = [&](bool full_matrix_merge) {
    SkipGramConfig config;
    config.dim = 16;
    config.epochs = 2;
    config.num_shards = 4;
    config.full_matrix_merge = full_matrix_merge;
    SkipGramTrainer trainer(vocab, config);
    Rng rng(7);
    trainer.Train(corpus, &rng);
    return trainer.embeddings();
  };

  obs::Counter& clean = obs::MetricsRegistry::Instance().GetCounter(
      "skipgram.merge.clean_rows");
  const uint64_t clean_before = clean.value();
  const Matrix dirty_path = train(false);
  // The dirty-row run must actually exercise the clean-row fast path.
  EXPECT_GT(clean.value(), clean_before);
  const Matrix full_path = train(true);

  ASSERT_EQ(dirty_path.rows(), full_path.rows());
  ASSERT_EQ(dirty_path.cols(), full_path.cols());
  for (size_t r = 0; r < dirty_path.rows(); ++r) {
    for (size_t c = 0; c < dirty_path.cols(); ++c) {
      EXPECT_EQ(dirty_path(r, c), full_path(r, c)) << r << "," << c;
    }
  }
}

TEST_F(KernelsTest, ShardedTrainingBitIdenticalAcrossThreadCounts) {
  const auto corpus = MakeCorpus(24, 10, 30, 123);
  auto train = [&] {
    SkipGramConfig config;
    config.dim = 16;
    config.epochs = 2;
    config.num_shards = 4;
    SkipGramTrainer trainer(24, config);
    Rng rng(9);
    trainer.Train(corpus, &rng);
    return trainer.embeddings();
  };

  SetThreadCount(1);
  const Matrix one = train();
  for (size_t threads : {size_t{2}, size_t{4}}) {
    SetThreadCount(threads);
    const Matrix many = train();
    ASSERT_EQ(one.rows(), many.rows());
    ASSERT_EQ(one.cols(), many.cols());
    for (size_t r = 0; r < one.rows(); ++r) {
      for (size_t c = 0; c < one.cols(); ++c) {
        EXPECT_EQ(one(r, c), many(r, c))
            << "threads=" << threads << " " << r << "," << c;
      }
    }
  }
}

// Any FIXED backend must give a pure-function pipeline: repeated runs and
// different thread counts produce bit-identical embeddings (the backends only
// differ from each other, never from themselves).
TEST_F(KernelsTest, ShardedTrainingDeterministicUnderEveryForcedBackend) {
  const auto corpus = MakeCorpus(24, 10, 30, 123);
  auto train = [&] {
    SkipGramConfig config;
    config.dim = 16;
    config.epochs = 2;
    config.num_shards = 4;
    SkipGramTrainer trainer(24, config);
    Rng rng(9);
    trainer.Train(corpus, &rng);
    return trainer.embeddings();
  };

  for (const std::string& backend : kernels::AvailableBackendNames()) {
    ASSERT_TRUE(kernels::SetActiveBackend(backend));
    SetThreadCount(1);
    const Matrix first = train();
    const Matrix repeat = train();
    SetThreadCount(4);
    const Matrix threaded = train();
    ASSERT_EQ(first.rows(), repeat.rows());
    ASSERT_EQ(first.rows(), threaded.rows());
    for (size_t r = 0; r < first.rows(); ++r) {
      for (size_t c = 0; c < first.cols(); ++c) {
        EXPECT_EQ(first(r, c), repeat(r, c))
            << backend << " rerun " << r << "," << c;
        EXPECT_EQ(first(r, c), threaded(r, c))
            << backend << " threads=4 " << r << "," << c;
      }
    }
    SetThreadCount(0);
  }
}

}  // namespace
}  // namespace tg
