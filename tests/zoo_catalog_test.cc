#include <set>

#include <gtest/gtest.h>

#include "zoo/catalog.h"

namespace tg::zoo {
namespace {

TEST(CatalogTest, PaperScaleRoster) {
  Catalog catalog = BuildCatalog();
  // 12 public image + 61 image sources + 8 public text + 16 text sources.
  EXPECT_EQ(catalog.datasets.size(), 12u + 61u + 8u + 16u);

  int image_public = 0, image_targets = 0, image_sources = 0;
  int text_public = 0, text_targets = 0, text_sources = 0;
  for (const DatasetInfo& d : catalog.datasets) {
    if (d.modality == Modality::kImage) {
      if (d.is_public) ++image_public;
      else ++image_sources;
      if (d.is_evaluation_target) ++image_targets;
    } else {
      if (d.is_public) ++text_public;
      else ++text_sources;
      if (d.is_evaluation_target) ++text_targets;
    }
  }
  EXPECT_EQ(image_public, 12);
  EXPECT_EQ(image_targets, 8);
  EXPECT_EQ(image_sources, 61);
  EXPECT_EQ(text_public, 8);
  EXPECT_EQ(text_targets, 8);
  EXPECT_EQ(text_sources, 16);
}

TEST(CatalogTest, PaperModelCounts) {
  Catalog catalog = BuildCatalog();
  int image_models = 0;
  int text_models = 0;
  for (const ModelInfo& m : catalog.models) {
    (m.modality == Modality::kImage ? image_models : text_models)++;
  }
  EXPECT_EQ(image_models, 185);
  EXPECT_EQ(text_models, 163);
}

TEST(CatalogTest, TableThreeExactCounts) {
  Catalog catalog = BuildCatalog();
  auto find = [&](const std::string& name) -> const DatasetInfo& {
    for (const DatasetInfo& d : catalog.datasets) {
      if (d.name == name) return d;
    }
    static DatasetInfo missing;
    ADD_FAILURE() << "dataset not found: " << name;
    return missing;
  };
  EXPECT_EQ(find("stanfordcars").num_samples, 8144u);
  EXPECT_EQ(find("stanfordcars").num_classes, 196);
  EXPECT_EQ(find("svhn").num_samples, 73257u);
  EXPECT_EQ(find("cifar100").num_classes, 100);
  EXPECT_EQ(find("glue/cola").num_samples, 8550u);
  EXPECT_EQ(find("tweet_eval/sentiment").num_classes, 3);
  EXPECT_EQ(find("smallnorb_elevation").num_samples, 24300u);
}

TEST(CatalogTest, ModelNamesUnique) {
  Catalog catalog = BuildCatalog();
  std::set<std::string> names;
  for (const ModelInfo& m : catalog.models) {
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate " << m.name;
  }
}

TEST(CatalogTest, ModelsPretrainOnSourceDatasetsOfSameModality) {
  Catalog catalog = BuildCatalog();
  for (const ModelInfo& m : catalog.models) {
    ASSERT_LT(m.source_dataset, catalog.datasets.size());
    const DatasetInfo& source = catalog.datasets[m.source_dataset];
    EXPECT_EQ(source.modality, m.modality) << m.name;
    EXPECT_FALSE(source.is_public) << m.name;
  }
}

TEST(CatalogTest, ArchitectureDiversity) {
  Catalog catalog = BuildCatalog();
  std::set<Architecture> image_archs;
  std::set<Architecture> text_archs;
  for (const ModelInfo& m : catalog.models) {
    (m.modality == Modality::kImage ? image_archs : text_archs)
        .insert(m.architecture);
  }
  EXPECT_EQ(image_archs.size(), 8u);
  EXPECT_EQ(text_archs.size(), 8u);
}

TEST(CatalogTest, ModelMetadataSane) {
  Catalog catalog = BuildCatalog();
  for (const ModelInfo& m : catalog.models) {
    EXPECT_GT(m.num_parameters_millions, 0.0);
    EXPECT_GT(m.memory_mb, 0.0);
    EXPECT_GT(m.input_size, 0);
  }
}

TEST(CatalogTest, DeterministicForSeed) {
  Catalog a = BuildCatalog();
  Catalog b = BuildCatalog();
  ASSERT_EQ(a.models.size(), b.models.size());
  for (size_t i = 0; i < a.models.size(); ++i) {
    EXPECT_EQ(a.models[i].name, b.models[i].name);
    EXPECT_EQ(a.models[i].source_dataset, b.models[i].source_dataset);
    EXPECT_DOUBLE_EQ(a.models[i].num_parameters_millions,
                     b.models[i].num_parameters_millions);
  }
}

TEST(CatalogTest, CustomModelCounts) {
  CatalogOptions options;
  options.num_image_models = 30;
  options.num_text_models = 20;
  Catalog catalog = BuildCatalog(options);
  int image = 0;
  int text = 0;
  for (const ModelInfo& m : catalog.models) {
    (m.modality == Modality::kImage ? image : text)++;
  }
  EXPECT_EQ(image, 30);
  EXPECT_EQ(text, 20);
}

TEST(TypesTest, Names) {
  EXPECT_STREQ(ModalityName(Modality::kImage), "image");
  EXPECT_STREQ(ArchitectureName(Architecture::kViT), "vit");
  EXPECT_STREQ(FineTuneMethodName(FineTuneMethod::kLora), "lora");
}

}  // namespace
}  // namespace tg::zoo
