// Edge cases for the tabular learners: degenerate features, few distinct
// values, collinearity, single-row fits -- the inputs that break naive
// implementations of histogram binning and normal-equation solvers.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "ml/gbdt.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

TEST(GbdtEdgeCasesTest, ConstantFeaturesOnlyPredictMean) {
  TabularDataset data;
  data.x = Matrix(40, 3, 1.0);  // every feature constant
  data.y.resize(40);
  for (size_t i = 0; i < 40; ++i) data.y[i] = static_cast<double>(i % 5);
  Gbdt model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.Predict({1.0, 1.0, 1.0}), 2.0, 1e-9);  // mean of 0..4
}

TEST(GbdtEdgeCasesTest, BinaryFeatureSplitsExactly) {
  TabularDataset data;
  data.x = Matrix(100, 1);
  data.y.resize(100);
  for (size_t i = 0; i < 100; ++i) {
    data.x(i, 0) = i % 2 == 0 ? 0.0 : 1.0;
    data.y[i] = i % 2 == 0 ? -3.0 : 3.0;
  }
  GbdtConfig config;
  config.num_trees = 40;
  Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.Predict({0.0}), -3.0, 0.1);
  EXPECT_NEAR(model.Predict({1.0}), 3.0, 0.1);
}

TEST(GbdtEdgeCasesTest, SingleRowFit) {
  TabularDataset data;
  data.x = Matrix(1, 2, 0.5);
  data.y = {0.7};
  Gbdt model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.Predict({0.5, 0.5}), 0.7, 1e-9);
}

TEST(GbdtEdgeCasesTest, ManyDistinctValuesStillBounded) {
  // More distinct values than bins: binning must stay within max_bins.
  Rng rng(1);
  TabularDataset data;
  data.x = Matrix(2000, 1);
  data.y.resize(2000);
  for (size_t i = 0; i < 2000; ++i) {
    data.x(i, 0) = rng.NextDouble();
    data.y[i] = data.x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  GbdtConfig config;
  config.num_trees = 20;
  config.max_bins = 8;  // very coarse
  Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(model.Predict({0.95}), model.Predict({0.05}) + 0.5);
}

TEST(LinearRegressionEdgeCasesTest, PerfectlyCollinearFeatures) {
  // x1 = 2 * x0: the ridge term must keep the solve well posed.
  Rng rng(2);
  TabularDataset data;
  data.x = Matrix(100, 2);
  data.y.resize(100);
  for (size_t i = 0; i < 100; ++i) {
    data.x(i, 0) = rng.NextGaussian();
    data.x(i, 1) = 2.0 * data.x(i, 0);
    data.y[i] = 3.0 * data.x(i, 0);
  }
  LinearRegression model(1e-3);
  ASSERT_TRUE(model.Fit(data).ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(model.Predict(data.x.Row(i)), data.y[i], 0.05);
  }
}

TEST(LinearRegressionEdgeCasesTest, MoreFeaturesThanRows) {
  Rng rng(3);
  TabularDataset data;
  data.x = Matrix::Gaussian(10, 30, &rng);
  data.y.resize(10);
  for (size_t i = 0; i < 10; ++i) data.y[i] = data.x(i, 0);
  LinearRegression model(1.0);  // heavier ridge for the fat case
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_TRUE(std::isfinite(model.Predict(data.x.Row(0))));
}

TEST(RandomForestEdgeCasesTest, TwoRowFit) {
  TabularDataset data;
  data.x = Matrix(2, 1);
  data.x(0, 0) = 0.0;
  data.x(1, 0) = 1.0;
  data.y = {0.2, 0.8};
  RandomForestConfig config;
  config.num_trees = 5;
  RandomForest model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  const double p = model.Predict({0.5});
  EXPECT_GE(p, 0.2 - 1e-9);
  EXPECT_LE(p, 0.8 + 1e-9);
}

TEST(AutogradEdgeCasesTest, DeepChainBackpropagates) {
  // 200 chained operations: the iterative topological sort must not
  // overflow and gradients must compose exactly ((0.99)^200 per entry).
  using autograd::MakeParameter;
  using autograd::Scale;
  using autograd::Sum;
  autograd::Var x = MakeParameter(Matrix(2, 2, 1.0));
  autograd::Var h = x;
  for (int i = 0; i < 200; ++i) h = Scale(h, 0.99);
  autograd::Var loss = Sum(h);
  autograd::Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), std::pow(0.99, 200), 1e-12);
}

}  // namespace
}  // namespace tg::ml
