// Contract tests: programmer errors must abort loudly (TG_CHECK), never
// corrupt state silently. Uses gtest death tests.
#include <gtest/gtest.h>

#include "graph/alias_table.h"
#include "graph/graph.h"
#include "ml/gbdt.h"
#include "numeric/matrix.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tg {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, MatrixOutOfRangeAccessAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.At(2, 0), "TG_CHECK failed");
  EXPECT_DEATH(m.At(0, 5), "TG_CHECK failed");
}

TEST(ContractsDeathTest, MatrixShapeMismatchAborts) {
  Matrix a(2, 2);
  Matrix b(3, 2);
  EXPECT_DEATH(a += b, "TG_CHECK failed");
  EXPECT_DEATH(a.MatMul(Matrix(3, 1)), "TG_CHECK failed");
}

TEST(ContractsDeathTest, AliasTableRejectsBadWeights) {
  EXPECT_DEATH(AliasTable(std::vector<double>{}), "TG_CHECK failed");
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "TG_CHECK failed");
  EXPECT_DEATH(AliasTable({1.0, -1.0}), "TG_CHECK failed");
}

TEST(ContractsDeathTest, GraphRejectsSelfLoopsAndDuplicateNames) {
  Graph g;
  NodeId a = g.AddNode(NodeType::kDataset, "a");
  g.AddNode(NodeType::kModel, "b");
  EXPECT_DEATH(g.AddUndirectedEdge(a, a, EdgeType::kDatasetDataset, 1.0),
               "TG_CHECK failed");
  EXPECT_DEATH(g.AddNode(NodeType::kModel, "a"), "duplicate node name");
}

TEST(ContractsDeathTest, PredictBeforeFitAborts) {
  ml::Gbdt model;
  EXPECT_DEATH(model.Predict({1.0}), "Predict before Fit");
}

TEST(ContractsDeathTest, RngNextBelowZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBelow(0), "TG_CHECK failed");
}

// --- Non-death odds and ends ---

TEST(WallTimerTest, ElapsedIsMonotone) {
  obs::WallTimer watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), second);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3, 1.0);
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  const LogLevel previous = SetLogLevel(LogLevel::kError);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

}  // namespace
}  // namespace tg
