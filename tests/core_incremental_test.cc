#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "numeric/stats.h"

namespace tg::core {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() {
    zoo::ModelZooConfig zoo_config;
    zoo_config.catalog.num_image_models = 48;
    zoo_config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(zoo_config);

    PipelineConfig config;
    config.strategy.predictor = PredictorKind::kXgboost;
    config.strategy.learner = GraphLearner::kNode2Vec;
    config.strategy.features = FeatureSet::kAll;
    config.node2vec.walk.walks_per_node = 6;
    config.node2vec.walk.walk_length = 15;
    config.node2vec.skipgram.dim = 24;
    config.node2vec.skipgram.epochs = 2;
    config.predictor.gbdt.num_trees = 80;
    recommender_ = std::make_unique<IncrementalRecommender>(
        zoo_.get(), zoo::Modality::kImage, config);
    target_ = zoo_->EvaluationTargets(zoo::Modality::kImage)[1];
  }

  // Best / worst existing image models by average accuracy over public
  // datasets.
  std::pair<size_t, size_t> BestAndWorstModel() {
    size_t best = 0, worst = 0;
    double best_avg = -1.0, worst_avg = 2.0;
    for (size_t m : zoo_->ModelsOfModality(zoo::Modality::kImage)) {
      double avg = 0.0;
      int count = 0;
      for (size_t d : zoo_->PublicDatasets(zoo::Modality::kImage)) {
        avg += zoo_->FineTuneAccuracy(m, d);
        ++count;
      }
      avg /= count;
      if (avg > best_avg) {
        best_avg = avg;
        best = m;
      }
      if (avg < worst_avg) {
        worst_avg = avg;
        worst = m;
      }
    }
    return {best, worst};
  }

  // A "new upload" cloned from an existing model: same metadata, and its
  // actual fine-tuning results on a few non-target public datasets as the
  // observed history.
  std::pair<zoo::ModelInfo, std::vector<NewModelObservation>> CloneOf(
      size_t model) {
    zoo::ModelInfo info = zoo_->models()[model];
    info.name += "-new-upload";
    std::vector<NewModelObservation> observations;
    for (size_t d : zoo_->PublicDatasets(zoo::Modality::kImage)) {
      if (d == target_) continue;
      if (observations.size() >= 4) break;
      observations.push_back(
          NewModelObservation{d, zoo_->FineTuneAccuracy(model, d)});
    }
    return {info, observations};
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  std::unique_ptr<IncrementalRecommender> recommender_;
  size_t target_ = 0;
};

TEST_F(IncrementalTest, ExistingScoresCorrelateWithGroundTruth) {
  std::vector<double> predicted;
  std::vector<double> actual;
  for (size_t m : zoo_->ModelsOfModality(zoo::Modality::kImage)) {
    predicted.push_back(recommender_->ScoreExisting(m, target_));
    actual.push_back(zoo_->FineTuneAccuracy(m, target_));
  }
  // The predictor saw the target's history at training time here (no LOO):
  // correlation should be clearly positive.
  EXPECT_GT(PearsonCorrelation(predicted, actual), 0.5);
}

TEST_F(IncrementalTest, GoodCloneOutscoresBadClone) {
  auto [best, worst] = BestAndWorstModel();
  auto [good_info, good_obs] = CloneOf(best);
  auto [bad_info, bad_obs] = CloneOf(worst);
  const double good = recommender_->ScoreNewModel(good_info, good_obs,
                                                  target_);
  const double bad = recommender_->ScoreNewModel(bad_info, bad_obs, target_);
  EXPECT_GT(good, bad);
}

TEST_F(IncrementalTest, CloneScoreApproximatesOriginalScore) {
  auto [best, worst] = BestAndWorstModel();
  (void)worst;
  auto [info, observations] = CloneOf(best);
  const double clone_score =
      recommender_->ScoreNewModel(info, observations, target_);
  const double original_score = recommender_->ScoreExisting(best, target_);
  EXPECT_NEAR(clone_score, original_score, 0.15);
}

TEST_F(IncrementalTest, EmbeddingIsWeightedAverageOfNeighbors) {
  auto [best, worst] = BestAndWorstModel();
  (void)worst;
  auto [info, observations] = CloneOf(best);
  std::vector<double> embedding =
      recommender_->ApproximateEmbedding(info, observations);
  ASSERT_EQ(embedding.size(), recommender_->embeddings().cols());
  // Must lie within the bounding box of the dataset embeddings used.
  for (size_t c = 0; c < embedding.size(); ++c) {
    double lo = 1e300;
    double hi = -1e300;
    for (size_t node = 0; node < recommender_->embeddings().rows(); ++node) {
      lo = std::min(lo, recommender_->embeddings()(node, c));
      hi = std::max(hi, recommender_->embeddings()(node, c));
    }
    EXPECT_GE(embedding[c], lo - 1e-9);
    EXPECT_LE(embedding[c], hi + 1e-9);
  }
}

TEST_F(IncrementalTest, WorksWithoutObservations) {
  auto [best, worst] = BestAndWorstModel();
  (void)worst;
  auto [info, observations] = CloneOf(best);
  observations.clear();  // cold upload: only the pre-training source known
  const double score = recommender_->ScoreNewModel(info, observations,
                                                   target_);
  EXPECT_TRUE(std::isfinite(score));
}

}  // namespace
}  // namespace tg::core
