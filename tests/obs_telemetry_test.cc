// Telemetry plane tests: Prometheus exposition grammar and name-mapping
// audit, live scrapes racing ParallelFor (TSan target), /statusz progress
// during a real sweep, structured event-log JSON validity, token-bucket
// shedding accounting, clean degradation under injected bind/accept faults,
// and the determinism contract -- sweep outputs bit-identical with the whole
// plane on or off.
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/fault.h"
#include "util/http_server.h"
#include "util/json_util.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

// Every test restores the quiet default state so suite ordering never
// matters (the same discipline as ObsTest).
class ObsTelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::StopTelemetry();
    obs::StopEventLog();
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(false);
    fault::ClearFaults();
    SetThreadCount(0);
  }
};

// --- Name mapping ------------------------------------------------------------

TEST_F(ObsTelemetryTest, PrometheusNameMapsDotsAndPrefixes) {
  EXPECT_EQ(obs::PrometheusName("sweep.targets_done"),
            "tg_sweep_targets_done");
  EXPECT_EQ(obs::PrometheusName("stage.graph_build.seconds"),
            "tg_stage_graph_build_seconds");
  EXPECT_EQ(obs::PrometheusName("a-b c.d"), "tg_a_b_c_d");
}

TEST_F(ObsTelemetryTest, RegistryWideExpositionAuditPasses) {
  // Touch representative instruments of every type, then audit the whole
  // registry: every expanded name legal, no post-mapping collisions.
  obs::MetricsRegistry::Instance().GetCounter("pipeline.target_retries");
  obs::MetricsRegistry::Instance().GetGauge("sweep.targets_done");
  obs::StageHistogram("graph_build");
  const Status audit = obs::CheckPrometheusExposition();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST_F(ObsTelemetryTest, ExpositionAuditCatchesCollisions) {
  // "a.b" and "a_b" both map to tg_a_b: the audit must flag it. Registered
  // as gauges so they do not pick up type suffixes.
  obs::MetricsRegistry::Instance().GetGauge("collide.on_purpose");
  obs::MetricsRegistry::Instance().GetGauge("collide_on.purpose");
  const Status audit = obs::CheckPrometheusExposition();
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.ToString().find("collision"), std::string::npos)
      << audit.ToString();
}

// --- Exposition grammar ------------------------------------------------------

// Minimal structural check of the text exposition: every line is a comment
// or "<name>[{le="..."}] <value>", histogram buckets are cumulative and end
// at +Inf, and _count equals the +Inf bucket.
TEST_F(ObsTelemetryTest, PrometheusTextExpositionIsWellFormed) {
  obs::SetMetricsEnabled(true);
  static obs::Counter& counter =
      obs::MetricsRegistry::Instance().GetCounter("telemetry_test.events");
  counter.Increment(3);
  obs::MetricsRegistry::Instance().GetGauge("telemetry_test.level").Set(1.5);
  obs::Histogram& hist = obs::StageHistogram("telemetry_test_stage");
  hist.Observe(0.001);
  hist.Observe(0.5);
  hist.Observe(1e9);  // lands in the overflow bucket

  const std::string text = obs::RenderPrometheusText();
  std::istringstream lines(text);
  std::string line;
  uint64_t last_cumulative = 0;
  uint64_t inf_bucket = 0;
  bool saw_test_histogram = false;
  const std::string bucket_prefix = "tg_stage_telemetry_test_stage_seconds";
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      ASSERT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    // Names: tg_ prefix, optional single {le="..."} label set.
    ASSERT_EQ(name.rfind("tg_", 0), 0u) << line;
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.find("{le=\""), brace) << line;
      ASSERT_EQ(name.back(), '}') << line;
    }
    if (name.rfind(bucket_prefix + "_bucket", 0) == 0) {
      saw_test_histogram = true;
      const uint64_t cumulative = std::stoull(value);
      EXPECT_GE(cumulative, last_cumulative) << line;  // cumulative series
      last_cumulative = cumulative;
      if (name.find("+Inf") != std::string::npos) inf_bucket = cumulative;
    }
    if (name == bucket_prefix + "_count") {
      EXPECT_EQ(std::stoull(value), inf_bucket) << line;
      EXPECT_GE(std::stoull(value), 3u) << line;
    }
  }
  EXPECT_TRUE(saw_test_histogram);
  EXPECT_GE(inf_bucket, 3u);
}

// --- Live endpoints ----------------------------------------------------------

TEST_F(ObsTelemetryTest, ScrapeDuringParallelForIsCleanAndValid) {
  ASSERT_TRUE(obs::StartTelemetry(0).ok());
  const int port = obs::TelemetryPort();
  ASSERT_GT(port, 0);
  EXPECT_EQ(obs::TelemetryStatusString(), "ok");

  // Pool workers open spans and bump metrics while the main thread scrapes:
  // the TSan build of this test is the data-race gate for the registry
  // snapshot and the cross-thread open-span reads.
  // Resolved before the first scrape so the sample is present from the
  // start; the worker only increments.
  obs::Counter& spins =
      obs::MetricsRegistry::Instance().GetCounter("telemetry_test.spins");
  std::atomic<bool> stop{false};
  std::thread worker([&stop, &spins] {
    while (!stop.load(std::memory_order_relaxed)) {
      ParallelFor(0, 64, 8, [&](size_t begin, size_t end, size_t /*chunk*/) {
        TG_TRACE_SPAN("telemetry_test_chunk");
        for (size_t i = begin; i < end; ++i) spins.Increment();
      });
    }
  });
  for (int i = 0; i < 20; ++i) {
    Result<HttpGetResult> metrics = HttpGet(port, "/metrics");
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_EQ(metrics.value().status, 200);
    EXPECT_NE(metrics.value().body.find("tg_telemetry_test_spins_total"),
              std::string::npos);

    Result<HttpGetResult> statusz = HttpGet(port, "/statusz");
    ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
    EXPECT_EQ(statusz.value().status, 200);
    const Status valid = JsonValidate(statusz.value().body);
    EXPECT_TRUE(valid.ok()) << valid.ToString();

    Result<HttpGetResult> health = HttpGet(port, "/healthz");
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_EQ(health.value().body, "ok\n");

    Result<HttpGetResult> missing = HttpGet(port, "/nope");
    ASSERT_TRUE(missing.ok()) << missing.status().ToString();
    EXPECT_EQ(missing.value().status, 404);
  }
  stop.store(true, std::memory_order_relaxed);
  worker.join();
  obs::StopTelemetry();
  EXPECT_EQ(obs::TelemetryStatusString(), "disabled");
}

TEST_F(ObsTelemetryTest, StatuszSweepProgressAdvancesDuringLiveSweep) {
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 48;
  zoo_config.catalog.num_text_models = 24;
  zoo_config.world.max_samples_per_dataset = 80;
  zoo::ModelZoo zoo(zoo_config);
  core::Pipeline pipeline(&zoo, zoo::Modality::kImage);
  core::PipelineConfig config;
  config.strategy = core::Strategy{core::PredictorKind::kLinearRegression,
                                   core::GraphLearner::kNone,
                                   core::FeatureSet::kMetadataOnly};

  ASSERT_TRUE(obs::StartTelemetry(0).ok());
  const int port = obs::TelemetryPort();

  std::thread sweep([&] {
    (void)pipeline.EvaluateAllTargetsResumable(config, core::SweepOptions{});
  });
  // Poll /statusz while the sweep runs; progress must be monotone and land
  // exactly on total once joined.
  std::vector<double> observed;
  double total = 0.0;
  while (true) {
    Result<HttpGetResult> statusz = HttpGet(port, "/statusz");
    ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
    Result<JsonValue> parsed = JsonValue::Parse(statusz.value().body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue* sweep_obj = parsed.value().Find("sweep");
    ASSERT_NE(sweep_obj, nullptr);
    const double done = sweep_obj->Find("targets_done")->AsDouble();
    total = sweep_obj->Find("targets_total")->AsDouble();
    observed.push_back(done);
    if (total > 0.0 && done >= total) break;
  }
  sweep.join();
  ASSERT_GE(total, 1.0);
  for (size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GE(observed[i], observed[i - 1]);  // monotone progress
  }
  EXPECT_EQ(observed.back(), total);
}

// --- Event log ---------------------------------------------------------------

TEST_F(ObsTelemetryTest, EventLogRecordsAreStrictJsonWithSpanChains) {
  const std::string path = TempPath("event_log_records.jsonl");
  obs::EventLogOptions options;
  options.span_threshold_ms = 0.0;  // every span close is logged
  options.flush_interval_ms = 5;
  ASSERT_TRUE(obs::StartEventLog(path, options).ok());
  EXPECT_EQ(obs::EventLogPath(), path);
  EXPECT_FALSE(obs::StartEventLog(path, options).ok());  // already running

  TG_LOG(Error) << "structured line " << 42;
  {
    obs::Span outer("telemetry_test_outer");
    obs::Span inner("telemetry_test_inner");
    TG_LOG(Error) << "nested line";
    obs::EmitEvent("telemetry_test.event", "payload", "extra");
  }
  obs::StopEventLog();
  obs::StopEventLog();  // idempotent

  const std::string content = ReadWholeFile(path);
  std::istringstream lines(content);
  std::string line;
  size_t records = 0;
  bool saw_log = false;
  bool saw_span = false;
  bool saw_event = false;
  bool saw_nested_chain = false;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(JsonValidate(line).ok()) << line;
    Result<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok());
    const JsonValue& record = parsed.value();
    ++records;
    ASSERT_NE(record.Find("ts_ns"), nullptr) << line;
    ASSERT_NE(record.Find("tid"), nullptr) << line;
    ASSERT_NE(record.Find("spans"), nullptr) << line;
    const std::string kind = record.Find("kind")->AsString();
    if (kind == "log") {
      saw_log = true;
      EXPECT_EQ(record.Find("level")->AsString(), "ERROR");
      EXPECT_NE(record.Find("file"), nullptr);
      EXPECT_NE(record.Find("line"), nullptr);
      if (record.Find("msg")->AsString() == "nested line") {
        const JsonValue* spans = record.Find("spans");
        ASSERT_EQ(spans->size(), 2u) << line;
        EXPECT_EQ(spans->at(0).AsString(), "telemetry_test_outer");
        EXPECT_EQ(spans->at(1).AsString(), "telemetry_test_inner");
        saw_nested_chain = true;
      }
    } else if (kind == "span") {
      saw_span = true;
      EXPECT_NE(record.Find("name"), nullptr);
      EXPECT_NE(record.Find("dur_ns"), nullptr);
    } else if (kind == "telemetry_test.event") {
      saw_event = true;
      EXPECT_EQ(record.Find("msg")->AsString(), "payload");
      EXPECT_EQ(record.Find("detail")->AsString(), "extra");
    }
  }
  EXPECT_GE(records, 5u);
  EXPECT_TRUE(saw_log);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_event);
  EXPECT_TRUE(saw_nested_chain);
}

TEST_F(ObsTelemetryTest, RateLimiterShedsAndCountsDrops) {
  const std::string path = TempPath("event_log_shed.jsonl");
  obs::EventLogOptions options;
  options.rate_per_sec = 1.0;  // essentially no refill during the test
  options.burst = 10.0;
  options.flush_interval_ms = 5;
  const uint64_t emitted_before = obs::EventLogEmittedCount();
  const uint64_t dropped_before = obs::EventLogDroppedCount();
  ASSERT_TRUE(obs::StartEventLog(path, options).ok());
  constexpr int kBursts = 200;
  for (int i = 0; i < kBursts; ++i) {
    obs::EmitEvent("telemetry_test.flood", std::to_string(i));
  }
  obs::StopEventLog();
  const uint64_t emitted = obs::EventLogEmittedCount() - emitted_before;
  const uint64_t dropped = obs::EventLogDroppedCount() - dropped_before;
  // Every emission was either accepted or counted as shed...
  EXPECT_EQ(emitted + dropped, static_cast<uint64_t>(kBursts));
  // ...and the bucket admitted at most burst (+1 for refill slack).
  EXPECT_LE(emitted, 11u);
  EXPECT_GE(dropped, 189u);

  // The file holds exactly the accepted records.
  const std::string content = ReadWholeFile(path);
  std::istringstream lines(content);
  std::string line;
  uint64_t written = 0;
  while (std::getline(lines, line)) ++written;
  EXPECT_EQ(written, emitted);
}

TEST_F(ObsTelemetryTest, LogLinesRouteToEventLogNotStderrWhenEnabled) {
  const std::string path = TempPath("event_log_routed.jsonl");
  ASSERT_TRUE(obs::StartEventLog(path, obs::EventLogOptions{}).ok());
  TG_LOG(Error) << "routed through the structured log";
  obs::StopEventLog();
  const std::string content = ReadWholeFile(path);
  EXPECT_NE(content.find("routed through the structured log"),
            std::string::npos);
  // After Stop the sink is uninstalled: logging falls back to stderr and
  // the file no longer grows.
  TG_LOG(Error) << "back on stderr";
  EXPECT_EQ(ReadWholeFile(path).find("back on stderr"), std::string::npos);
}

// --- Determinism -------------------------------------------------------------

TEST_F(ObsTelemetryTest, SweepIsBitIdenticalWithTelemetryPlaneOn) {
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 48;
  zoo_config.catalog.num_text_models = 24;
  zoo_config.world.max_samples_per_dataset = 80;
  zoo::ModelZoo zoo(zoo_config);
  core::Pipeline pipeline(&zoo, zoo::Modality::kImage);
  core::PipelineConfig config;
  config.strategy = core::Strategy{core::PredictorKind::kLinearRegression,
                                   core::GraphLearner::kNone,
                                   core::FeatureSet::kMetadataOnly};

  const core::SweepResult baseline =
      pipeline.EvaluateAllTargetsResumable(config, core::SweepOptions{});

  // Whole plane on: scrape server, span publication, metrics, event log
  // with a zero span threshold. A scrape runs mid-sweep for good measure.
  ASSERT_TRUE(obs::StartTelemetry(0).ok());
  obs::EventLogOptions options;
  options.span_threshold_ms = 0.0;
  ASSERT_TRUE(
      obs::StartEventLog(TempPath("event_log_determinism.jsonl"), options)
          .ok());
  const int port = obs::TelemetryPort();
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)HttpGet(port, "/metrics");
      (void)HttpGet(port, "/statusz");
    }
  });
  const core::SweepResult live =
      pipeline.EvaluateAllTargetsResumable(config, core::SweepOptions{});
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  obs::StopEventLog();
  obs::StopTelemetry();

  ASSERT_EQ(baseline.evaluations.size(), live.evaluations.size());
  for (size_t i = 0; i < baseline.evaluations.size(); ++i) {
    const core::TargetEvaluation& a = baseline.evaluations[i];
    const core::TargetEvaluation& b = live.evaluations[i];
    EXPECT_EQ(a.target_name, b.target_name);
    EXPECT_EQ(a.model_indices, b.model_indices) << a.target_name;
    EXPECT_EQ(a.predicted, b.predicted) << a.target_name;
    EXPECT_EQ(a.actual, b.actual) << a.target_name;
    EXPECT_EQ(a.pearson, b.pearson) << a.target_name;
    EXPECT_EQ(a.spearman, b.spearman) << a.target_name;
  }
}

// --- Fault injection ---------------------------------------------------------

TEST_F(ObsTelemetryTest, InjectedBindFaultLatchesUnavailable) {
  ASSERT_TRUE(fault::InstallSpec("telemetry_bind=always").ok());
  const Status started = obs::StartTelemetry(0);
  EXPECT_FALSE(started.ok());
  EXPECT_FALSE(obs::TelemetryRunning());
  const std::string status = obs::TelemetryStatusString();
  EXPECT_EQ(status.rfind("unavailable", 0), 0u) << status;
  EXPECT_NE(status.find("telemetry_bind"), std::string::npos) << status;
  fault::ClearFaults();

  // The latched state is exported through build_info (and with it every
  // bench_timings.json written after the failure).
  const std::string build_info = BuildInfoJson();
  EXPECT_NE(build_info.find("\"telemetry\":\"unavailable"),
            std::string::npos)
      << build_info;

  // A later successful start clears the latch back to ok.
  ASSERT_TRUE(obs::StartTelemetry(0).ok());
  EXPECT_EQ(obs::TelemetryStatusString(), "ok");
  obs::StopTelemetry();
}

TEST_F(ObsTelemetryTest, OccupiedPortDegradesCleanly) {
  HttpServer occupant;
  occupant.Handle("/", [](const std::string&, const std::string&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(occupant.Start(0).ok());
  const Status started = obs::StartTelemetry(occupant.bound_port());
  EXPECT_FALSE(started.ok());
  EXPECT_FALSE(obs::TelemetryRunning());
  EXPECT_EQ(obs::TelemetryStatusString().rfind("unavailable", 0), 0u);
  occupant.Stop();
}

TEST_F(ObsTelemetryTest, InjectedAcceptFaultShutsServerDownGracefully) {
  ASSERT_TRUE(obs::StartTelemetry(0).ok());
  const int port = obs::TelemetryPort();
  ASSERT_TRUE(fault::InstallSpec("telemetry_accept=always").ok());
  // The poisoned accept kills the serve loop; the connection itself is
  // drained and refused, never crashing the process.
  (void)HttpGet(port, "/healthz", 500);
  for (int i = 0; i < 100 && obs::TelemetryRunning(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  fault::ClearFaults();
  EXPECT_FALSE(obs::TelemetryRunning());
  EXPECT_EQ(obs::TelemetryStatusString().rfind("unavailable", 0), 0u);
  obs::StopTelemetry();
}

}  // namespace
}  // namespace tg
