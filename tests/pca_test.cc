#include <cmath>

#include <gtest/gtest.h>

#include "numeric/pca.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg {
namespace {

// Data with variance concentrated along a known direction.
Matrix AnisotropicData(size_t n, Rng* rng) {
  Matrix x(n, 4);
  for (size_t i = 0; i < n; ++i) {
    const double big = 10.0 * rng->NextGaussian();
    x(i, 0) = big + 0.1 * rng->NextGaussian();
    x(i, 1) = -big + 0.1 * rng->NextGaussian();
    x(i, 2) = 0.1 * rng->NextGaussian();
    x(i, 3) = 0.1 * rng->NextGaussian();
  }
  return x;
}

TEST(PcaTest, OutputShapeAndExplainedVariance) {
  Rng rng(1);
  Matrix x = AnisotropicData(300, &rng);
  Pca pca;
  ASSERT_TRUE(pca.Fit(x, 1).ok());
  EXPECT_EQ(pca.output_dim(), 1u);
  // Nearly all variance lives on the first component.
  EXPECT_GT(pca.ExplainedVarianceRatio(), 0.98);
  Matrix projected = pca.Transform(x);
  EXPECT_EQ(projected.rows(), 300u);
  EXPECT_EQ(projected.cols(), 1u);
}

TEST(PcaTest, FirstComponentCapturesDominantDirection) {
  Rng rng(2);
  Matrix x = AnisotropicData(400, &rng);
  Pca pca;
  ASSERT_TRUE(pca.Fit(x, 1).ok());
  // Projection variance onto PC1 should be ~ variance of the big direction.
  Matrix projected = pca.Transform(x);
  const double var = Variance(projected.Col(0));
  EXPECT_GT(var, 150.0);  // 2 * 100 ~ variance of (big, -big) combination
}

TEST(PcaTest, TransformedDataIsCentered) {
  Rng rng(3);
  Matrix x = Matrix::Gaussian(200, 5, &rng, 7.0, 2.0);
  Pca pca;
  ASSERT_TRUE(pca.Fit(x, 3).ok());
  Matrix projected = pca.Transform(x);
  for (size_t c = 0; c < projected.cols(); ++c) {
    EXPECT_NEAR(Mean(projected.Col(c)), 0.0, 1e-9);
  }
}

TEST(PcaTest, ComponentsAreDecorrelated) {
  Rng rng(4);
  Matrix x = Matrix::Gaussian(500, 6, &rng);
  // Introduce correlation.
  for (size_t i = 0; i < x.rows(); ++i) x(i, 1) = 0.8 * x(i, 0) + 0.2 * x(i, 1);
  Pca pca;
  ASSERT_TRUE(pca.Fit(x, 3).ok());
  Matrix projected = pca.Transform(x);
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = a + 1; b < 3; ++b) {
      EXPECT_NEAR(PearsonCorrelation(projected.Col(a), projected.Col(b)),
                  0.0, 0.05);
    }
  }
}

TEST(PcaTest, ComponentCapAtDataDim) {
  Rng rng(5);
  Matrix x = Matrix::Gaussian(50, 3, &rng);
  Pca pca;
  ASSERT_TRUE(pca.Fit(x, 10).ok());
  EXPECT_EQ(pca.output_dim(), 3u);
  EXPECT_NEAR(pca.ExplainedVarianceRatio(), 1.0, 1e-9);
}

TEST(PcaTest, RowTransformMatchesMatrixTransform) {
  Rng rng(6);
  Matrix x = Matrix::Gaussian(100, 4, &rng);
  Pca pca;
  ASSERT_TRUE(pca.Fit(x, 2).ok());
  Matrix all = pca.Transform(x);
  std::vector<double> row = pca.TransformRow(x.Row(13));
  for (size_t c = 0; c < 2; ++c) EXPECT_NEAR(row[c], all(13, c), 1e-12);
}

TEST(PcaTest, InputValidation) {
  Pca pca;
  EXPECT_FALSE(pca.Fit(Matrix(1, 3), 2).ok());
  EXPECT_FALSE(pca.Fit(Matrix(10, 3), 0).ok());
  EXPECT_FALSE(pca.fitted());
}

}  // namespace
}  // namespace tg
