#include <gtest/gtest.h>

#include "features/domain_similarity.h"
#include "features/probe_network.h"
#include "features/task2vec.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg {
namespace {

TEST(ProbeNetworkTest, EmbeddingShapeAndNorm) {
  ProbeNetworkConfig config;
  config.embedding_dim = 32;
  ProbeNetwork probe(16, config);
  Rng rng(1);
  Matrix samples = Matrix::Gaussian(50, 16, &rng);
  Matrix per_sample = probe.EmbedSamples(samples);
  EXPECT_EQ(per_sample.rows(), 50u);
  EXPECT_EQ(per_sample.cols(), 32u);

  std::vector<double> embedding = probe.DatasetEmbedding(samples);
  EXPECT_EQ(embedding.size(), 32u);
  double norm = 0.0;
  for (double v : embedding) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(ProbeNetworkTest, DeterministicForSeed) {
  Rng rng(2);
  Matrix samples = Matrix::Gaussian(20, 8, &rng);
  ProbeNetwork a(8), b(8);
  EXPECT_EQ(a.DatasetEmbedding(samples), b.DatasetEmbedding(samples));
}

TEST(ProbeNetworkTest, SimilarDistributionsYieldSimilarEmbeddings) {
  ProbeNetwork probe(12);
  Rng rng(3);
  // Two datasets drawn from the same distribution vs a shifted one.
  Matrix base_a = Matrix::Gaussian(300, 12, &rng, 0.0, 1.0);
  Matrix base_b = Matrix::Gaussian(300, 12, &rng, 0.0, 1.0);
  Matrix shifted = Matrix::Gaussian(300, 12, &rng, 3.0, 0.3);
  auto ea = probe.DatasetEmbedding(base_a);
  auto eb = probe.DatasetEmbedding(base_b);
  auto es = probe.DatasetEmbedding(shifted);
  EXPECT_GT(DatasetSimilarity(ea, eb), DatasetSimilarity(ea, es));
}

TEST(DomainSimilarityTest, SelfSimilarityIsOne) {
  std::vector<double> e = {0.3, -0.2, 0.9, 0.1};
  EXPECT_NEAR(DatasetSimilarity(e, e), 1.0, 1e-12);
}

TEST(DomainSimilarityTest, BoundsRespected) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> a(8), b(8);
    for (size_t j = 0; j < 8; ++j) {
      a[j] = rng.NextGaussian();
      b[j] = rng.NextGaussian();
    }
    double s = DatasetSimilarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(DomainSimilarityTest, PairwiseMatrixSymmetric) {
  Rng rng(5);
  std::vector<std::vector<double>> embeddings(5, std::vector<double>(6));
  for (auto& e : embeddings) {
    for (double& v : e) v = rng.NextGaussian();
  }
  Matrix sim = PairwiseDatasetSimilarity(embeddings);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(sim(i, i), 1.0);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(sim(i, j), sim(j, i));
    }
  }
}

TEST(Task2VecTest, EmbeddingShapeAndNormalization) {
  Rng rng(6);
  Matrix features = Matrix::Gaussian(120, 10, &rng);
  std::vector<int> labels(120);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 3;
  auto result = Task2VecEmbedding(features, labels, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 10u);
  double norm = 0.0;
  for (double v : result.value()) norm += v * v;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Task2VecTest, SimilarTasksYieldCloserEmbeddings) {
  Rng rng(7);
  // Task A and A' share class structure along dims 0-1; task B uses dims 8-9.
  auto make_task = [&](size_t d0, size_t d1, uint64_t seed) {
    Rng local(seed);
    Matrix f = Matrix::Gaussian(200, 10, &local, 0.0, 0.5);
    std::vector<int> labels(200);
    for (size_t i = 0; i < 200; ++i) {
      labels[i] = static_cast<int>(i % 2);
      f(i, d0) += labels[i] == 0 ? 2.0 : -2.0;
      f(i, d1) += labels[i] == 0 ? -2.0 : 2.0;
    }
    return std::make_pair(f, labels);
  };
  auto [fa, la] = make_task(0, 1, 100);
  auto [fa2, la2] = make_task(0, 1, 101);
  auto [fb, lb] = make_task(8, 9, 102);
  auto ea = Task2VecEmbedding(fa, la, 2).value();
  auto ea2 = Task2VecEmbedding(fa2, la2, 2).value();
  auto eb = Task2VecEmbedding(fb, lb, 2).value();
  EXPECT_GT(CosineSimilarity(ea, ea2), CosineSimilarity(ea, eb));
}

TEST(Task2VecTest, InputValidation) {
  Matrix f(10, 4);
  EXPECT_FALSE(Task2VecEmbedding(Matrix(), {}, 2).ok());
  EXPECT_FALSE(Task2VecEmbedding(f, std::vector<int>(4, 0), 2).ok());
  EXPECT_FALSE(
      Task2VecEmbedding(f, std::vector<int>(10, 0), 1).ok());
  std::vector<int> bad(10, 0);
  bad[3] = 9;
  EXPECT_FALSE(Task2VecEmbedding(f, bad, 2).ok());
}

}  // namespace
}  // namespace tg
