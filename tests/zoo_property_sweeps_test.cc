// Parameterized robustness sweeps over the synthetic-world and graph
// construction configuration: the invariants the pipeline depends on must
// hold for any seed and any pruning threshold, not just the defaults.
#include <memory>

#include <gtest/gtest.h>

#include "core/graph_builder.h"
#include "graph/graph_stats.h"
#include "numeric/stats.h"
#include "zoo/model_zoo.h"

namespace tg {
namespace {

// --- World invariants across seeds ---

class WorldSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldSeedSweep, SimulatorInvariantsHold) {
  zoo::ModelZooConfig config;
  config.catalog.num_image_models = 24;
  config.catalog.num_text_models = 12;
  config.catalog.seed = GetParam();
  config.world.seed = GetParam() * 31 + 7;
  config.finetune.seed = GetParam() * 17 + 3;
  config.world.max_samples_per_dataset = 64;
  zoo::ModelZoo zoo(config);

  for (zoo::Modality modality :
       {zoo::Modality::kImage, zoo::Modality::kText}) {
    // Accuracies valid; evaluation targets have more spread than the
    // low-variance public datasets.
    double max_target_std = 0.0;
    double max_lowvar_std = 0.0;
    for (size_t d : zoo.PublicDatasets(modality)) {
      std::vector<double> accs;
      for (size_t m : zoo.ModelsOfModality(modality)) {
        const double acc = zoo.FineTuneAccuracy(m, d);
        ASSERT_GT(acc, 0.0);
        ASSERT_LT(acc, 1.0);
        accs.push_back(acc);
      }
      const double sd = StdDev(accs);
      if (zoo.datasets()[d].is_evaluation_target) {
        max_target_std = std::max(max_target_std, sd);
      } else {
        max_lowvar_std = std::max(max_lowvar_std, sd);
      }
    }
    EXPECT_GT(max_target_std, max_lowvar_std);

    // Affinity contributes positively to accuracy for every seed. The
    // magnitude is seed-dependent (affinity is one of four signal
    // components and its cross-model spread is small in small zoos), so
    // this sweep only pins the sign on pooled per-dataset z-scores; the
    // default-seed strength is asserted in zoo_simulator_test.
    std::vector<double> affinity;
    std::vector<double> accuracy_z;
    for (size_t d : zoo.PublicDatasets(modality)) {
      std::vector<double> accs;
      for (size_t m : zoo.ModelsOfModality(modality)) {
        accs.push_back(zoo.FineTuneAccuracy(m, d));
      }
      const double mu = Mean(accs);
      const double sd = std::max(StdDev(accs), 1e-12);
      size_t i = 0;
      for (size_t m : zoo.ModelsOfModality(modality)) {
        affinity.push_back(zoo.world().Affinity(m, d));
        accuracy_z.push_back((accs[i++] - mu) / sd);
      }
    }
    EXPECT_GT(PearsonCorrelation(affinity, accuracy_z), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep,
                         ::testing::Values<uint64_t>(1, 2, 5, 11, 99));

// --- Graph-builder invariants across thresholds ---

class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, GraphInvariantsHold) {
  static zoo::ModelZoo* shared_zoo = [] {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 24;
    config.catalog.num_text_models = 12;
    config.world.max_samples_per_dataset = 64;
    return new zoo::ModelZoo(config);
  }();

  const double threshold = GetParam();
  core::GraphBuildOptions options;
  options.accuracy_threshold = threshold;
  options.transferability_threshold = threshold;
  options.negative_threshold = threshold;
  core::BuiltGraph built = core::BuildModelZooGraph(
      shared_zoo, zoo::Modality::kImage, options);

  GraphStats stats = ComputeGraphStats(built.graph);
  // D-D edges are never pruned.
  EXPECT_EQ(stats.dataset_dataset_edges, 73u * 72u);
  // Kept history + labeled negatives partition the 24 x 12 history pairs.
  EXPECT_EQ(stats.model_dataset_accuracy_edges - 24u +
                built.negative_edges.size(),
            24u * 12u);
  // All weights positive; no self loops by construction.
  for (const EdgeRecord& e : built.graph.edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_NE(e.src, e.dst);
  }
  // The dataset core keeps the graph connected at any threshold.
  EXPECT_EQ(stats.connected_components, 1u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.95));

}  // namespace
}  // namespace tg
