#include <cmath>

#include <gtest/gtest.h>

#include "core/explain.h"
#include "ml/gbdt.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace tg::core {
namespace {

// Data where only feature 1 matters.
ml::TabularDataset OneInformativeFeature(uint64_t seed) {
  Rng rng(seed);
  ml::TabularDataset data;
  data.x = Matrix::Gaussian(400, 4, &rng);
  data.y.resize(400);
  for (size_t i = 0; i < 400; ++i) {
    data.y[i] = 3.0 * data.x(i, 1) + 0.05 * rng.NextGaussian();
  }
  data.feature_names = {"noise_a", "signal", "noise_b", "noise_c"};
  return data;
}

TEST(FeatureImportanceTest, GbdtFindsTheSignalFeature) {
  ml::GbdtConfig config;
  config.num_trees = 50;
  ml::Gbdt model(config);
  ASSERT_TRUE(model.Fit(OneInformativeFeature(1)).ok());
  std::vector<double> importances = model.FeatureImportances();
  ASSERT_EQ(importances.size(), 4u);
  EXPECT_GT(importances[1], 0.9);
  double sum = 0.0;
  for (double v : importances) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FeatureImportanceTest, RandomForestFindsTheSignalFeature) {
  ml::RandomForestConfig config;
  config.num_trees = 40;
  config.tree.max_depth = 4;
  ml::RandomForest model(config);
  ASSERT_TRUE(model.Fit(OneInformativeFeature(2)).ok());
  std::vector<double> importances = model.FeatureImportances();
  ASSERT_EQ(importances.size(), 4u);
  EXPECT_GT(importances[1], 0.5);
}

TEST(FeatureImportanceTest, LinearRegressionWeightsAsImportance) {
  ml::LinearRegression model;
  ASSERT_TRUE(model.Fit(OneInformativeFeature(3)).ok());
  std::vector<double> importances = model.FeatureImportances();
  ASSERT_EQ(importances.size(), 4u);
  EXPECT_GT(importances[1], 0.8);
}

TEST(FeatureImportanceTest, EmptyBeforeFit) {
  ml::Gbdt model;
  EXPECT_TRUE(model.FeatureImportances().empty());
}

TEST(ExplainTest, AggregatesEmbeddingGroups) {
  ml::TabularDataset data;
  Rng rng(4);
  data.x = Matrix::Gaussian(300, 6, &rng);
  data.y.resize(300);
  for (size_t i = 0; i < 300; ++i) {
    // Both embedding dims matter; metadata does not.
    data.y[i] = data.x(i, 2) + data.x(i, 3) + 0.05 * rng.NextGaussian();
  }
  data.feature_names = {"log_params",    "pretrain_accuracy",
                        "model_emb_0",   "model_emb_1",
                        "dataset_emb_0", "dataset_emb_1"};
  ml::GbdtConfig config;
  config.num_trees = 60;
  ml::Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());

  std::vector<FeatureAttribution> attributions =
      ExplainPredictor(model, data.feature_names, 3);
  ASSERT_FALSE(attributions.empty());
  EXPECT_EQ(attributions[0].feature, "graph: model embedding");
  EXPECT_GT(attributions[0].importance, 0.8);
  // Sorted descending.
  for (size_t i = 1; i < attributions.size(); ++i) {
    EXPECT_GE(attributions[i - 1].importance, attributions[i].importance);
  }
}

TEST(ExplainTest, TopKLimitsOutput) {
  ml::TabularDataset data = OneInformativeFeature(5);
  ml::LinearRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LE(ExplainPredictor(model, data.feature_names, 2).size(), 2u);
}

TEST(ExplainTest, NoImportancesYieldsEmpty) {
  // A model that was never fitted exposes no importances.
  ml::Gbdt model;
  EXPECT_TRUE(ExplainPredictor(model, {"a", "b"}).empty());
}

TEST(ExplainTest, RenderContainsFeatureNames) {
  std::vector<FeatureAttribution> attributions = {
      {"graph: model embedding", 0.61}, {"metadata: architecture", 0.2}};
  std::string text = RenderAttributions(attributions);
  EXPECT_NE(text.find("graph: model embedding"), std::string::npos);
  EXPECT_NE(text.find("0.6100"), std::string::npos);
}

}  // namespace
}  // namespace tg::core
