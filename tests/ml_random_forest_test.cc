#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ml/random_forest.h"
#include "numeric/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tg::ml {
namespace {

TabularDataset NonlinearData(size_t n, uint64_t seed, double noise = 0.1) {
  Rng rng(seed);
  TabularDataset data;
  data.x = Matrix::Gaussian(n, 4, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = std::sin(data.x(i, 0)) + (data.x(i, 1) > 0 ? 1.0 : -1.0) *
                                             std::fabs(data.x(i, 2)) +
                noise * rng.NextGaussian();
  }
  return data;
}

TEST(RandomForestTest, FitsNonlinearFunction) {
  TabularDataset data = NonlinearData(600, 1);
  RandomForestConfig config;
  config.num_trees = 50;
  config.tree.max_depth = 6;
  RandomForest model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> pred = model.PredictBatch(data.x);
  EXPECT_GT(PearsonCorrelation(pred, data.y), 0.85);
  EXPECT_EQ(model.num_trees(), 50u);
}

TEST(RandomForestTest, MoreTreesReduceVariance) {
  TabularDataset train = NonlinearData(400, 2);
  TabularDataset test = NonlinearData(200, 3);

  auto test_rmse = [&](int trees) {
    RandomForestConfig config;
    config.num_trees = trees;
    config.tree.max_depth = 6;
    config.seed = 5;
    RandomForest model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return Rmse(model.PredictBatch(test.x), test.y);
  };
  // An ensemble should beat a single bagged tree out of sample.
  EXPECT_LT(test_rmse(60), test_rmse(1));
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  TabularDataset data = NonlinearData(200, 4);
  RandomForestConfig config;
  config.num_trees = 10;
  config.seed = 99;
  RandomForest a(config);
  RandomForest b(config);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(data.x.Row(i)), b.Predict(data.x.Row(i)));
  }
}

TEST(RandomForestTest, PredictionWithinTargetRange) {
  // Tree ensembles cannot extrapolate beyond observed targets.
  TabularDataset data = NonlinearData(300, 6);
  RandomForest model;
  ASSERT_TRUE(model.Fit(data).ok());
  const double lo = Min(data.y);
  const double hi = Max(data.y);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> far = {rng.NextGaussian(0, 10), rng.NextGaussian(0, 10),
                               rng.NextGaussian(0, 10),
                               rng.NextGaussian(0, 10)};
    const double p = model.Predict(far);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(RandomForestTest, RejectsEmptyAndMismatched) {
  RandomForest model;
  TabularDataset empty;
  EXPECT_FALSE(model.Fit(empty).ok());
  TabularDataset bad;
  bad.x = Matrix(5, 2);
  bad.y.resize(3);
  EXPECT_FALSE(model.Fit(bad).ok());
}

TEST(RandomForestTest, BitIdenticalAcrossThreadCountsBothEngines) {
  // Per-tree Rng::Fork plus fixed bagging order makes the forest a pure
  // function of (data, seed) regardless of TG_THREADS -- for BOTH split
  // engines. Any scheduling dependence would show up as a flipped bit here.
  TabularDataset data = NonlinearData(300, 8);
  for (TreeEngineChoice engine :
       {TreeEngineChoice::kExact, TreeEngineChoice::kHist}) {
    auto fit_predictions = [&](size_t threads) {
      SetThreadCount(threads);
      RandomForestConfig config;
      config.num_trees = 12;
      config.tree.max_depth = 5;
      config.tree.engine = engine;
      config.seed = 31;
      RandomForest model(config);
      EXPECT_TRUE(model.Fit(data).ok());
      return model.PredictBatch(data.x);
    };
    const std::vector<double> one = fit_predictions(1);
    for (size_t threads : {size_t{2}, size_t{4}}) {
      const std::vector<double> many = fit_predictions(threads);
      ASSERT_EQ(one.size(), many.size());
      for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], many[i])
            << "engine=" << TreeEngineName(ResolveTreeEngine(engine))
            << " threads=" << threads << " row=" << i;
      }
    }
    SetThreadCount(0);
  }
}

TEST(RandomForestTest, HistEngineQualityTracksExact) {
  TabularDataset train = NonlinearData(600, 9);
  TabularDataset test = NonlinearData(300, 10);
  auto test_rmse = [&](TreeEngineChoice engine) {
    RandomForestConfig config;
    config.num_trees = 40;
    config.tree.max_depth = 6;
    config.tree.engine = engine;
    config.seed = 5;
    RandomForest model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return Rmse(model.PredictBatch(test.x), test.y);
  };
  const double exact = test_rmse(TreeEngineChoice::kExact);
  const double hist = test_rmse(TreeEngineChoice::kHist);
  // Quantized thresholds cost a little accuracy, never a collapse.
  EXPECT_LT(hist, exact * 1.10);
}

TEST(RandomForestTest, PaperDefaultsConstructible) {
  // Paper §VI-C: 100 trees, depth 5.
  RandomForestConfig config;
  EXPECT_EQ(config.num_trees, 100);
  EXPECT_EQ(config.tree.max_depth, 5);
}

}  // namespace
}  // namespace tg::ml
