#include <cmath>

#include <gtest/gtest.h>

#include "ml/random_forest.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

TabularDataset NonlinearData(size_t n, uint64_t seed, double noise = 0.1) {
  Rng rng(seed);
  TabularDataset data;
  data.x = Matrix::Gaussian(n, 4, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = std::sin(data.x(i, 0)) + (data.x(i, 1) > 0 ? 1.0 : -1.0) *
                                             std::fabs(data.x(i, 2)) +
                noise * rng.NextGaussian();
  }
  return data;
}

TEST(RandomForestTest, FitsNonlinearFunction) {
  TabularDataset data = NonlinearData(600, 1);
  RandomForestConfig config;
  config.num_trees = 50;
  config.tree.max_depth = 6;
  RandomForest model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> pred = model.PredictBatch(data.x);
  EXPECT_GT(PearsonCorrelation(pred, data.y), 0.85);
  EXPECT_EQ(model.num_trees(), 50u);
}

TEST(RandomForestTest, MoreTreesReduceVariance) {
  TabularDataset train = NonlinearData(400, 2);
  TabularDataset test = NonlinearData(200, 3);

  auto test_rmse = [&](int trees) {
    RandomForestConfig config;
    config.num_trees = trees;
    config.tree.max_depth = 6;
    config.seed = 5;
    RandomForest model(config);
    EXPECT_TRUE(model.Fit(train).ok());
    return Rmse(model.PredictBatch(test.x), test.y);
  };
  // An ensemble should beat a single bagged tree out of sample.
  EXPECT_LT(test_rmse(60), test_rmse(1));
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  TabularDataset data = NonlinearData(200, 4);
  RandomForestConfig config;
  config.num_trees = 10;
  config.seed = 99;
  RandomForest a(config);
  RandomForest b(config);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(data.x.Row(i)), b.Predict(data.x.Row(i)));
  }
}

TEST(RandomForestTest, PredictionWithinTargetRange) {
  // Tree ensembles cannot extrapolate beyond observed targets.
  TabularDataset data = NonlinearData(300, 6);
  RandomForest model;
  ASSERT_TRUE(model.Fit(data).ok());
  const double lo = Min(data.y);
  const double hi = Max(data.y);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> far = {rng.NextGaussian(0, 10), rng.NextGaussian(0, 10),
                               rng.NextGaussian(0, 10),
                               rng.NextGaussian(0, 10)};
    const double p = model.Predict(far);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(RandomForestTest, RejectsEmptyAndMismatched) {
  RandomForest model;
  TabularDataset empty;
  EXPECT_FALSE(model.Fit(empty).ok());
  TabularDataset bad;
  bad.x = Matrix(5, 2);
  bad.y.resize(3);
  EXPECT_FALSE(model.Fit(bad).ok());
}

TEST(RandomForestTest, PaperDefaultsConstructible) {
  // Paper §VI-C: 100 trees, depth 5.
  RandomForestConfig config;
  EXPECT_EQ(config.num_trees, 100);
  EXPECT_EQ(config.tree.max_depth, 5);
}

}  // namespace
}  // namespace tg::ml
