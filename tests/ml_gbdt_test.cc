#include <cmath>

#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

TabularDataset NonlinearData(size_t n, uint64_t seed, double noise = 0.05) {
  Rng rng(seed);
  TabularDataset data;
  data.x = Matrix::Gaussian(n, 5, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = data.x(i, 0) * data.x(i, 1) + std::cos(data.x(i, 2)) +
                0.3 * data.x(i, 3) + noise * rng.NextGaussian();
  }
  return data;
}

TEST(GbdtTest, TrainRmseDecreasesMonotonically) {
  TabularDataset data = NonlinearData(400, 1);
  GbdtConfig config;
  config.num_trees = 100;
  Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  const auto& curve = model.train_rmse_curve();
  ASSERT_EQ(curve.size(), 100u);
  // Squared-loss boosting on training data is non-increasing (up to tiny
  // histogram-boundary effects).
  EXPECT_LT(curve.back(), curve.front() * 0.5);
  int increases = 0;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i] > curve[i - 1] + 1e-9) ++increases;
  }
  EXPECT_LE(increases, 2);
}

TEST(GbdtTest, FitsInteractionTerm) {
  TabularDataset data = NonlinearData(600, 2);
  GbdtConfig config;
  config.num_trees = 200;
  config.max_depth = 4;
  Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> pred = model.PredictBatch(data.x);
  EXPECT_GT(PearsonCorrelation(pred, data.y), 0.95);
}

TEST(GbdtTest, GeneralizesBetterThanMean) {
  TabularDataset train = NonlinearData(500, 3);
  TabularDataset test = NonlinearData(300, 4);
  GbdtConfig config;
  config.num_trees = 150;
  Gbdt model(config);
  ASSERT_TRUE(model.Fit(train).ok());
  const double model_rmse = Rmse(model.PredictBatch(test.x), test.y);
  std::vector<double> mean_pred(test.y.size(), Mean(train.y));
  const double mean_rmse = Rmse(mean_pred, test.y);
  EXPECT_LT(model_rmse, mean_rmse * 0.6);
}

TEST(GbdtTest, ShrinkageSlowsFitting) {
  TabularDataset data = NonlinearData(300, 5);
  GbdtConfig fast;
  fast.num_trees = 20;
  fast.learning_rate = 0.3;
  GbdtConfig slow;
  slow.num_trees = 20;
  slow.learning_rate = 0.01;
  Gbdt fast_model(fast);
  Gbdt slow_model(slow);
  ASSERT_TRUE(fast_model.Fit(data).ok());
  ASSERT_TRUE(slow_model.Fit(data).ok());
  EXPECT_LT(fast_model.train_rmse_curve().back(),
            slow_model.train_rmse_curve().back());
}

TEST(GbdtTest, LambdaRegularizesLeafValues) {
  // Heavier L2 on leaves -> less training-set fit per tree.
  TabularDataset data = NonlinearData(300, 6);
  GbdtConfig light;
  light.num_trees = 10;
  light.lambda = 0.01;
  GbdtConfig heavy;
  heavy.num_trees = 10;
  heavy.lambda = 100.0;
  Gbdt light_model(light);
  Gbdt heavy_model(heavy);
  ASSERT_TRUE(light_model.Fit(data).ok());
  ASSERT_TRUE(heavy_model.Fit(data).ok());
  EXPECT_LT(light_model.train_rmse_curve().back(),
            heavy_model.train_rmse_curve().back());
}

TEST(GbdtTest, SubsampleWorks) {
  TabularDataset data = NonlinearData(300, 7);
  GbdtConfig config;
  config.num_trees = 50;
  config.subsample = 0.5;
  Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(PearsonCorrelation(model.PredictBatch(data.x), data.y), 0.8);
}

TEST(GbdtTest, ConstantTargetIsExact) {
  TabularDataset data;
  Rng rng(8);
  data.x = Matrix::Gaussian(50, 3, &rng);
  data.y.assign(50, 2.5);
  Gbdt model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.Predict(data.x.Row(0)), 2.5, 1e-9);
}

TEST(GbdtTest, DeterministicGivenSeed) {
  TabularDataset data = NonlinearData(200, 9);
  GbdtConfig config;
  config.num_trees = 30;
  Gbdt a(config);
  Gbdt b(config);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(data.x.Row(i)), b.Predict(data.x.Row(i)));
  }
}

TEST(GbdtTest, PaperDefaults) {
  // Paper §VI-C: 500 trees, depth 5.
  GbdtConfig config;
  EXPECT_EQ(config.num_trees, 500);
  EXPECT_EQ(config.max_depth, 5);
}

TEST(GbdtTest, RejectsInvalidInput) {
  Gbdt model;
  TabularDataset empty;
  EXPECT_FALSE(model.Fit(empty).ok());
}

}  // namespace
}  // namespace tg::ml
