#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "util/string_util.h"
#include "zoo/history_export.h"

namespace tg::zoo {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buffer[512];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  return content;
}

TEST(HistoryExportTest, WritesOneRowPerPair) {
  ModelZooConfig config;
  config.catalog.num_image_models = 12;
  config.catalog.num_text_models = 8;
  config.world.max_samples_per_dataset = 64;
  ModelZoo zoo(config);

  const std::string path = ::testing::TempDir() + "/history.csv";
  HistoryExportOptions options;
  options.include_logme = false;  // keep the test fast
  ASSERT_TRUE(ExportTrainingHistoryCsv(&zoo, Modality::kImage, path,
                                       options)
                  .ok());

  const std::string content = ReadFile(path);
  const std::vector<std::string> lines = Split(Trim(content), '\n');
  // Header + 12 models x 12 public image datasets.
  EXPECT_EQ(lines.size(), 1u + 12u * 12u);
  EXPECT_EQ(lines[0],
            "model,architecture,source_dataset,dataset,finetune_accuracy");
  // Every data row has 5 fields and a parsable accuracy in (0, 1).
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> fields = Split(lines[i], ',');
    ASSERT_EQ(fields.size(), 5u) << lines[i];
    const double acc = std::stod(fields[4]);
    EXPECT_GT(acc, 0.0);
    EXPECT_LT(acc, 1.0);
  }
}

TEST(HistoryExportTest, LogMeColumnIncludedWhenRequested) {
  ModelZooConfig config;
  config.catalog.num_image_models = 6;
  config.catalog.num_text_models = 4;
  config.world.max_samples_per_dataset = 64;
  ModelZoo zoo(config);

  const std::string path = ::testing::TempDir() + "/history_logme.csv";
  ASSERT_TRUE(ExportTrainingHistoryCsv(&zoo, Modality::kText, path).ok());
  const std::string content = ReadFile(path);
  const std::vector<std::string> lines = Split(Trim(content), '\n');
  EXPECT_EQ(lines.size(), 1u + 4u * 8u);
  EXPECT_NE(lines[0].find(",logme"), std::string::npos);
  EXPECT_EQ(Split(lines[1], ',').size(), 6u);
}

TEST(HistoryExportTest, BadPathFails) {
  ModelZooConfig config;
  config.catalog.num_image_models = 4;
  config.catalog.num_text_models = 4;
  ModelZoo zoo(config);
  EXPECT_FALSE(ExportTrainingHistoryCsv(&zoo, Modality::kImage,
                                        "/nonexistent-dir/foo.csv")
                   .ok());
}

}  // namespace
}  // namespace tg::zoo
