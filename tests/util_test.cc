#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/backoff.h"
#include "util/csv.h"
#include "util/json_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace tg {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

// --- Rng ---

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);  // ~5 sigma for binomial(1e5, 0.1)
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(30, 10);
    std::set<size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 10u);
    for (size_t v : sample) EXPECT_LT(v, 30u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(21);
  Rng fork1 = a.Fork(5);
  Rng fork2 = Rng(21).Fork(5);
  EXPECT_EQ(fork1.NextUint64(), fork2.NextUint64());
  Rng other = Rng(21).Fork(6);
  EXPECT_NE(Rng(21).Fork(5).NextUint64(), other.NextUint64());
}

// --- String utilities ---

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("TG:LR,N2V", "TG:"));
  EXPECT_FALSE(StartsWith("LR", "TG:"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

// --- CSV writer ---

TEST(CsvTest, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "/tg_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"name", "value"});
    writer.WriteRow({"has,comma", "has\"quote"});
    EXPECT_TRUE(writer.Close().ok());
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[256];
  std::string content;
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_NE(content.find("name,value\n"), std::string::npos);
  EXPECT_NE(content.find("\"has,comma\",\"has\"\"quote\"\n"),
            std::string::npos);
}

// --- Table printer ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"method", "pearson"});
  table.AddRow({"LogME", "0.50"});
  table.AddRow({"TG:XGB,N2V,all", "0.77"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("TG:XGB,N2V,all  0.77"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(StringUtilTest, EndsWith) {
  EXPECT_TRUE(EndsWith("stage.x.seconds", ".seconds"));
  EXPECT_TRUE(EndsWith("abc", ""));
  EXPECT_FALSE(EndsWith("abc", "abcd"));
  EXPECT_FALSE(EndsWith("stage.x.alloc_bytes", ".seconds"));
}

TEST(JsonValueTest, ParsesScalarsArraysAndObjects) {
  Result<JsonValue> parsed = JsonValue::Parse(
      R"({"name": "tg", "count": 3, "ratio": -1.5e2, "on": true,)"
      R"( "off": false, "nil": null, "list": [1, 2, 3]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("name")->AsString(), "tg");
  EXPECT_DOUBLE_EQ(doc.Find("count")->AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(doc.Find("ratio")->AsDouble(), -150.0);
  EXPECT_TRUE(doc.Find("on")->AsBool());
  EXPECT_FALSE(doc.Find("off")->AsBool());
  EXPECT_TRUE(doc.Find("nil")->is_null());
  EXPECT_EQ(doc.Find("missing"), nullptr);
  const JsonValue* list = doc.Find("list");
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_DOUBLE_EQ(list->at(2).AsDouble(), 3.0);
}

TEST(JsonValueTest, DecodesStringEscapes) {
  Result<JsonValue> parsed =
      JsonValue::Parse(R"(["a\"b", "tab\t", "\u00e9\u0041"])");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().at(0).AsString(), "a\"b");
  EXPECT_EQ(parsed.value().at(1).AsString(), "tab\t");
  EXPECT_EQ(parsed.value().at(2).AsString(),
            "\xc3\xa9" "A");  // e-acute, then A
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]").ok());
  EXPECT_FALSE(JsonValue::Parse("[1] trailing").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"a": 01})").ok());
}

TEST(JsonValueTest, RoundTripsQuotedStrings) {
  const std::string original = "line\nbreak \"quoted\" tab\t";
  Result<JsonValue> parsed = JsonValue::Parse(JsonQuote(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().AsString(), original);
}

// --- Backoff ---

TEST(BackoffTest, DeterministicUnderSeed) {
  BackoffPolicy policy;
  policy.seed = 42;
  Backoff a(policy);
  Backoff b(policy);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDelaySec(), b.NextDelaySec()) << "attempt " << i;
  }
  EXPECT_EQ(a.attempts(), 10u);
}

TEST(BackoffTest, DifferentSeedsDesynchronize) {
  BackoffPolicy pa;
  pa.seed = 1;
  BackoffPolicy pb;
  pb.seed = 2;
  Backoff a(pa);
  Backoff b(pb);
  bool any_different = false;
  for (int i = 0; i < 8; ++i) {
    if (a.NextDelaySec() != b.NextDelaySec()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(BackoffTest, GrowsExponentiallyWithinJitterBounds) {
  BackoffPolicy policy;
  policy.initial_sec = 0.01;
  policy.multiplier = 2.0;
  policy.max_sec = 100.0;  // cap out of the way
  policy.jitter = 0.5;
  policy.seed = 7;
  Backoff backoff(policy);
  double base = policy.initial_sec;
  for (int i = 0; i < 8; ++i) {
    const double delay = backoff.NextDelaySec();
    EXPECT_GE(delay, base * 0.5 - 1e-12) << "attempt " << i;
    EXPECT_LE(delay, base * 1.5 + 1e-12) << "attempt " << i;
    base *= policy.multiplier;
  }
}

TEST(BackoffTest, CapsAtMaxAndSurvivesManyAttempts) {
  BackoffPolicy policy;
  policy.initial_sec = 0.01;
  policy.max_sec = 0.05;
  policy.jitter = 0.5;
  Backoff backoff(policy);
  // Far past where initial * multiplier^k overflows a double: the delay
  // must stay finite and capped.
  for (int i = 0; i < 2000; ++i) {
    const double delay = backoff.NextDelaySec();
    EXPECT_GE(delay, 0.0);
    EXPECT_LE(delay, policy.max_sec);
  }
}

TEST(BackoffTest, NoJitterIsExactBaseSequence) {
  BackoffPolicy policy;
  policy.initial_sec = 0.01;
  policy.multiplier = 2.0;
  policy.max_sec = 0.04;
  policy.jitter = 0.0;
  Backoff backoff(policy);
  EXPECT_DOUBLE_EQ(backoff.NextDelaySec(), 0.01);
  EXPECT_DOUBLE_EQ(backoff.NextDelaySec(), 0.02);
  EXPECT_DOUBLE_EQ(backoff.NextDelaySec(), 0.04);
  EXPECT_DOUBLE_EQ(backoff.NextDelaySec(), 0.04);  // capped
}

TEST(BackoffTest, ResetRestartsTheSequence) {
  BackoffPolicy policy;
  policy.seed = 11;
  Backoff backoff(policy);
  std::vector<double> first;
  for (int i = 0; i < 5; ++i) first.push_back(backoff.NextDelaySec());
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(backoff.NextDelaySec(), first[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace tg
