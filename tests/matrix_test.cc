#include <cmath>

#include <gtest/gtest.h>

#include "numeric/matrix.h"
#include "util/rng.h"

namespace tg {
namespace {

Matrix Small() { return Matrix::FromRows({{1, 2}, {3, 4}}); }

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  EXPECT_EQ(m.ShapeString(), "[3 x 4]");
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, FromRowsAndAccess) {
  Matrix m = Small();
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m = Small();
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  m.SetRow(0, {5, 6});
  EXPECT_DOUBLE_EQ(m(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
}

TEST(MatrixTest, AdditionSubtraction) {
  Matrix a = Small();
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 11.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 36.0);
}

TEST(MatrixTest, ScalarMultiplication) {
  Matrix m = Small() * 2.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
  Matrix n = 0.5 * Small();
  EXPECT_DOUBLE_EQ(n(0, 0), 0.5);
}

TEST(MatrixTest, MatMul) {
  Matrix a = Small();                            // [[1,2],[3,4]]
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});      // 1x3
  Matrix b = Matrix::FromRows({{1}, {2}, {3}});  // 3x1
  Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 1u);
  ASSERT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 14.0);
}

TEST(MatrixTest, TransposedMatMulMatchesExplicit) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(5, 3, &rng);
  Matrix b = Matrix::Gaussian(5, 4, &rng);
  Matrix fast = a.TransposedMatMul(b);
  Matrix slow = a.Transpose().MatMul(b);
  EXPECT_LT((fast - slow).MaxAbs(), 1e-12);
}

TEST(MatrixTest, MatMulTransposedMatchesExplicit) {
  Rng rng(5);
  Matrix a = Matrix::Gaussian(4, 6, &rng);
  Matrix b = Matrix::Gaussian(3, 6, &rng);
  Matrix fast = a.MatMulTransposed(b);
  Matrix slow = a.MatMul(b.Transpose());
  EXPECT_LT((fast - slow).MaxAbs(), 1e-12);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(7);
  Matrix a = Matrix::Gaussian(4, 7, &rng);
  EXPECT_LT((a.Transpose().Transpose() - a).MaxAbs(), 1e-15);
}

TEST(MatrixTest, Hadamard) {
  Matrix a = Small();
  Matrix h = a.Hadamard(a);
  EXPECT_DOUBLE_EQ(h(1, 0), 9.0);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix a = Small();
  Matrix bias = Matrix::FromRows({{10, 100}});
  Matrix out = a.AddRowBroadcast(bias);
  EXPECT_DOUBLE_EQ(out(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 104.0);
}

TEST(MatrixTest, MapSumNorms) {
  Matrix a = Small();
  Matrix sq = a.Map([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(sq(1, 1), 16.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, RowMeanColSum) {
  Matrix a = Small();
  Matrix rm = a.RowMean();
  EXPECT_DOUBLE_EQ(rm(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(rm(1, 0), 3.5);
  Matrix cs = a.ColSum();
  EXPECT_DOUBLE_EQ(cs(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(cs(0, 1), 6.0);
}

TEST(MatrixTest, GaussianMatrixMoments) {
  Rng rng(11);
  Matrix g = Matrix::Gaussian(200, 200, &rng, 2.0, 3.0);
  double mean = g.Sum() / static_cast<double>(g.size());
  EXPECT_NEAR(mean, 2.0, 0.1);
}

TEST(MatrixTest, UniformMatrixRange) {
  Rng rng(13);
  Matrix u = Matrix::Uniform(50, 50, &rng, -1.0, 1.0);
  EXPECT_LE(u.MaxAbs(), 1.0);
}

TEST(MatrixTest, ColumnVector) {
  Matrix v = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_DOUBLE_EQ(v(2, 0), 3.0);
}

}  // namespace
}  // namespace tg
