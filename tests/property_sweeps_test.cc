// Parameterized property sweeps: invariants that must hold across whole
// configuration ranges, not just single examples.
#include <cmath>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "embedding/random_walk.h"
#include "graph/alias_table.h"
#include "ml/gbdt.h"
#include "numeric/linalg.h"
#include "numeric/stats.h"
#include "transferability/logme.h"
#include "util/rng.h"

namespace tg {
namespace {

// --- Alias table: empirical distribution matches weights for any shape ---

class AliasTableSweep
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasTableSweep, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double>& weights = GetParam();
  AliasTable table(weights);
  Rng rng(42);
  std::vector<double> counts(weights.size(), 0.0);
  const int n = 120000;
  for (int i = 0; i < n; ++i) counts[table.Sample(&rng)] += 1.0;
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / n, weights[i] / total, 0.012)
        << "outcome " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightShapes, AliasTableSweep,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{1.0, 1.0, 1.0, 1.0},
                      std::vector<double>{0.1, 0.9},
                      std::vector<double>{5.0, 1.0, 3.0, 0.5, 0.5},
                      std::vector<double>{100.0, 1.0, 1.0},
                      std::vector<double>{0.0, 2.0, 0.0, 2.0}));

// --- Random walks: every step follows an edge for any (p, q, extended) ---

class WalkConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, double, bool>> {};

TEST_P(WalkConfigSweep, WalksStayOnEdgesAndReachFullLength) {
  const auto [p, q, extended] = GetParam();
  Graph g;
  Rng build_rng(7);
  for (int i = 0; i < 30; ++i) {
    g.AddNode(NodeType::kDataset, "n" + std::to_string(i));
  }
  // Random connected-ish graph: ring + chords with random weights.
  for (NodeId i = 0; i < 30; ++i) {
    g.AddUndirectedEdge(i, (i + 1) % 30, EdgeType::kDatasetDataset,
                        0.1 + build_rng.NextDouble());
  }
  for (int c = 0; c < 25; ++c) {
    NodeId a = static_cast<NodeId>(build_rng.NextBelow(30));
    NodeId b = static_cast<NodeId>(build_rng.NextBelow(30));
    if (a != b) {
      g.AddUndirectedEdge(a, b, EdgeType::kDatasetDataset,
                          0.1 + build_rng.NextDouble());
    }
  }

  WalkConfig config;
  config.p = p;
  config.q = q;
  config.extended = extended;
  config.walk_length = 25;
  RandomWalkGenerator walker(g, config);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    auto walk =
        walker.Walk(static_cast<NodeId>(rng.NextBelow(30)), &rng);
    EXPECT_EQ(walk.size(), 25u);
    for (size_t s = 0; s + 1 < walk.size(); ++s) {
      EXPECT_TRUE(g.HasEdgeBetween(walk[s], walk[s + 1]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PqGrid, WalkConfigSweep,
    ::testing::Combine(::testing::Values(0.25, 1.0, 4.0),
                       ::testing::Values(0.25, 1.0, 4.0),
                       ::testing::Bool()));

// --- LogME: monotone in class separation for various (dim, classes) ---

class LogMeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(LogMeSweep, MonotoneInSeparation) {
  const auto [dim, classes] = GetParam();
  Rng rng(1000 + dim * 10 + static_cast<size_t>(classes));
  auto score_at = [&](double separation) {
    Matrix features(240, dim);
    std::vector<int> labels(240);
    std::vector<std::vector<double>> centers(classes,
                                             std::vector<double>(dim));
    for (auto& c : centers) {
      for (double& v : c) v = separation * rng.NextGaussian();
    }
    for (size_t i = 0; i < 240; ++i) {
      const int y = static_cast<int>(i) % classes;
      labels[i] = y;
      for (size_t d = 0; d < dim; ++d) {
        features(i, d) = centers[y][d] + rng.NextGaussian();
      }
    }
    return LogMeScore(features, labels, classes).value();
  };
  const double low = score_at(0.2);
  const double high = score_at(3.0);
  EXPECT_GT(high, low);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndClasses, LogMeSweep,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 48),
                       ::testing::Values(2, 5, 12)));

// --- GBDT: training error shrinks vs the mean for any config ---

class GbdtConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(GbdtConfigSweep, TrainRmseBeatsConstantPredictor) {
  const auto [depth, lr, lambda] = GetParam();
  Rng rng(5);
  ml::TabularDataset data;
  data.x = Matrix::Gaussian(300, 6, &rng);
  data.y.resize(300);
  for (size_t i = 0; i < 300; ++i) {
    data.y[i] = std::sin(data.x(i, 0)) + 0.4 * data.x(i, 1);
  }
  ml::GbdtConfig config;
  config.num_trees = 80;
  config.max_depth = depth;
  config.learning_rate = lr;
  config.lambda = lambda;
  ml::Gbdt model(config);
  ASSERT_TRUE(model.Fit(data).ok());
  const double baseline = StdDev(data.y);  // RMSE of predicting the mean
  EXPECT_LT(model.train_rmse_curve().back(), baseline * 0.8)
      << "depth=" << depth << " lr=" << lr << " lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GbdtConfigSweep,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(0.05, 0.2),
                       ::testing::Values(0.1, 1.0, 10.0)));

// --- SVD: reconstruction holds across shapes ---

class SvdShapeSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdShapeSweep, ReconstructsInput) {
  const auto [rows, cols] = GetParam();
  Rng rng(17 + rows + cols);
  Matrix a = Matrix::Gaussian(rows, cols, &rng);
  Result<SingularValueDecomposition> svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  Matrix us = svd.value().u;
  for (size_t r = 0; r < us.rows(); ++r) {
    for (size_t c = 0; c < us.cols(); ++c) {
      us(r, c) *= svd.value().singular_values[c];
    }
  }
  Matrix reconstructed = us.MatMulTransposed(svd.value().v);
  EXPECT_LT((reconstructed - a).MaxAbs(), 1e-6)
      << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeSweep,
    ::testing::Values(std::make_pair<size_t, size_t>(5, 5),
                      std::make_pair<size_t, size_t>(40, 8),
                      std::make_pair<size_t, size_t>(8, 8),
                      std::make_pair<size_t, size_t>(100, 3),
                      std::make_pair<size_t, size_t>(64, 32)));

// --- Pearson: bounds and symmetry on random data of any size ---

class PearsonSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PearsonSizeSweep, BoundsAndSymmetry) {
  const size_t n = GetParam();
  Rng rng(23 + n);
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = 0.3 * a[i] + rng.NextGaussian();
  }
  const double ab = PearsonCorrelation(a, b);
  EXPECT_GE(ab, -1.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_DOUBLE_EQ(ab, PearsonCorrelation(b, a));
  EXPECT_NEAR(PearsonCorrelation(a, a), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PearsonSizeSweep,
                         ::testing::Values<size_t>(2, 3, 10, 185, 1000));

}  // namespace
}  // namespace tg
