// Tests for the distributed leave-one-out sweep: the atomic-rename claim
// protocol (exactly one winner under racing claimers and stealers), lease
// expiry and reclaim, crash-safe shard publication, the janitor, injected
// fault sites, and the end-to-end guarantee that a merged distributed sweep
// is byte-identical to a serial checkpointed sweep.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/distributed_sweep.h"
#include "core/pipeline.h"
#include "core/sweep_checkpoint.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace tg::core {
namespace {

// TSan instruments the allocator with process-wide locks; forking while any
// instrumented thread exists can deadlock the child. The fork-based races
// run under the plain and ASan builds instead.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TG_SKIP_FORK_TESTS 1
#endif
#endif

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Recursive removal so reused TempDir workdirs never leak a manifest from a
// previous binary (whose build sha would be refused by design).
void RemoveTree(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) return;
  if (!S_ISDIR(st.st_mode)) {
    std::remove(path.c_str());
    return;
  }
  if (DIR* dir = ::opendir(path.c_str())) {
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      RemoveTree(path + "/" + name);
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

// Rewinds a file's mtime by `seconds` -- how the tests simulate a lease
// whose owner died long ago without actually sleeping.
void BackdateFile(const std::string& path, double seconds) {
  struct timespec times[2];
  times[0].tv_sec = ::time(nullptr) - static_cast<time_t>(seconds);
  times[0].tv_nsec = 0;
  times[1] = times[0];
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
}

class DistributedSweepTest : public ::testing::Test {
 protected:
  DistributedSweepTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 48;
    config.catalog.num_text_models = 24;
    config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
    pipeline_ = std::make_unique<Pipeline>(zoo_.get(), zoo::Modality::kImage);
  }

  ~DistributedSweepTest() override {
    fault::ClearFaults();
    ClearSweepDrain();
    SetThreadCount(0);
  }

  // Metadata-only features need no graph or embeddings: the 8-target sweep
  // stays fast enough to run many full distributed rounds per test binary.
  static PipelineConfig FastConfig() {
    PipelineConfig config;
    config.strategy = Strategy{PredictorKind::kLinearRegression,
                               GraphLearner::kNone,
                               FeatureSet::kMetadataOnly};
    return config;
  }

  // A fresh workdir for this test, initialized for FastConfig's sweep.
  std::string FreshWorkdir(const std::string& name, size_t* tmp_reclaimed) {
    const std::string workdir = TempPath(name);
    RemoveTree(workdir);
    const std::string fingerprint =
        SweepFingerprint(FastConfig(), zoo::Modality::kImage);
    const size_t n = NumTargets();
    size_t reclaimed = 0;
    Status init =
        InitializeSweepWorkdir(workdir, fingerprint, n, 30.0, &reclaimed);
    EXPECT_TRUE(init.ok()) << init.ToString();
    if (tmp_reclaimed != nullptr) *tmp_reclaimed = reclaimed;
    return workdir;
  }

  size_t NumTargets() const {
    return zoo_->EvaluationTargets(zoo::Modality::kImage).size();
  }

  DistributedSweepOptions WorkerOptions(const std::string& workdir,
                                        const std::string& worker) {
    DistributedSweepOptions options;
    options.workdir = workdir;
    options.worker_id = worker;
    options.lease_sec = 30.0;
    options.poll_sec = 0.01;
    options.stall_timeout_sec = 30.0;
    return options;
  }

  std::string ReadAll(const std::string& path) {
    Result<std::string> contents = ReadFileToString(path);
    EXPECT_TRUE(contents.ok()) << contents.status().ToString();
    return contents.ok() ? contents.value() : std::string();
  }

  // The reference artifact: an uninterrupted serial checkpointed sweep.
  std::string SerialCheckpoint(const std::string& name) {
    const std::string path = TempPath(name);
    std::remove(path.c_str());
    SweepOptions options;
    options.checkpoint_path = path;
    const SweepResult result =
        pipeline_->EvaluateAllTargetsResumable(FastConfig(), options);
    EXPECT_TRUE(result.complete);
    return path;
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  std::unique_ptr<Pipeline> pipeline_;
};

// --- Claim protocol primitives ----------------------------------------------

TEST_F(DistributedSweepTest, InitializeSeedsFreeTokensIdempotently) {
  const std::string workdir = FreshWorkdir("ds_init", nullptr);
  for (size_t i = 0; i < NumTargets(); ++i) {
    EXPECT_TRUE(FileExists(SweepFreePath(workdir, i))) << i;
  }
  // Re-initialization validates the manifest and leaves the pool alone.
  const std::string fingerprint =
      SweepFingerprint(FastConfig(), zoo::Modality::kImage);
  Status again = InitializeSweepWorkdir(workdir, fingerprint, NumTargets(),
                                        30.0, nullptr);
  EXPECT_TRUE(again.ok()) << again.ToString();
  // A different configuration is refused outright, never silently mixed.
  Status mixed = InitializeSweepWorkdir(workdir, fingerprint + "|other",
                                        NumTargets(), 30.0, nullptr);
  EXPECT_FALSE(mixed.ok());
}

TEST_F(DistributedSweepTest, ClaimIsExclusiveSerially) {
  const std::string workdir = FreshWorkdir("ds_claim", nullptr);
  EXPECT_TRUE(TryClaimFreeTarget(workdir, 0, "w0"));
  EXPECT_TRUE(FileExists(SweepLeasePath(workdir, 0, "w0")));
  EXPECT_FALSE(FileExists(SweepFreePath(workdir, 0)));
  // The token is gone: every later claimer loses.
  EXPECT_FALSE(TryClaimFreeTarget(workdir, 0, "w1"));
  EXPECT_FALSE(TryClaimFreeTarget(workdir, 0, "w0"));
}

TEST_F(DistributedSweepTest, ConcurrentClaimersExactlyOneWins) {
  const std::string workdir = FreshWorkdir("ds_claim_race", nullptr);
  constexpr int kClaimers = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kClaimers);
  for (int t = 0; t < kClaimers; ++t) {
    threads.emplace_back([&, t] {
      if (TryClaimFreeTarget(workdir, 0, "w" + std::to_string(t))) {
        winners.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST_F(DistributedSweepTest, StealRequiresExpiredLease) {
  const std::string workdir = FreshWorkdir("ds_steal", nullptr);
  ASSERT_TRUE(TryClaimFreeTarget(workdir, 0, "victim"));
  std::string victim;
  // Fresh lease: the owner is alive, stealing must fail.
  EXPECT_FALSE(TryStealExpiredLease(workdir, 0, "thief", 30.0, &victim));
  // Kill -9 simulation: the lease's mtime stops advancing.
  BackdateFile(SweepLeasePath(workdir, 0, "victim"), 120.0);
  EXPECT_TRUE(TryStealExpiredLease(workdir, 0, "thief", 30.0, &victim));
  EXPECT_EQ(victim, "victim");
  EXPECT_TRUE(FileExists(SweepLeasePath(workdir, 0, "thief")));
  EXPECT_FALSE(FileExists(SweepLeasePath(workdir, 0, "victim")));
  // The stolen lease's clock restarted: it is not instantly re-stealable.
  EXPECT_FALSE(TryStealExpiredLease(workdir, 0, "thief2", 30.0, &victim));
}

TEST_F(DistributedSweepTest, ConcurrentStealersExactlyOneWins) {
  const std::string workdir = FreshWorkdir("ds_steal_race", nullptr);
  ASSERT_TRUE(TryClaimFreeTarget(workdir, 0, "victim"));
  BackdateFile(SweepLeasePath(workdir, 0, "victim"), 120.0);
  constexpr int kStealers = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kStealers);
  for (int t = 0; t < kStealers; ++t) {
    threads.emplace_back([&, t] {
      std::string victim;
      if (TryStealExpiredLease(workdir, 0, "t" + std::to_string(t), 30.0,
                               &victim)) {
        winners.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST_F(DistributedSweepTest, ReleaseReturnsTargetToThePool) {
  const std::string workdir = FreshWorkdir("ds_release", nullptr);
  ASSERT_TRUE(TryClaimFreeTarget(workdir, 0, "w0"));
  Status released = ReleaseLeaseToFree(workdir, 0, "w0");
  EXPECT_TRUE(released.ok()) << released.ToString();
  EXPECT_TRUE(FileExists(SweepFreePath(workdir, 0)));
  // Releasing a lease we no longer hold reports the theft.
  EXPECT_EQ(ReleaseLeaseToFree(workdir, 0, "w0").code(),
            StatusCode::kNotFound);
  // The released token is claimable again.
  EXPECT_TRUE(TryClaimFreeTarget(workdir, 0, "w1"));
}

TEST_F(DistributedSweepTest, RenewLeaseBumpsMtimeAndDetectsTheft) {
  const std::string workdir = FreshWorkdir("ds_renew", nullptr);
  ASSERT_TRUE(TryClaimFreeTarget(workdir, 0, "w0"));
  const std::string lease = SweepLeasePath(workdir, 0, "w0");
  BackdateFile(lease, 120.0);
  Status renewed = RenewLease(lease);
  EXPECT_TRUE(renewed.ok()) << renewed.ToString();
  // The renewal moved the lease out of the steal window.
  std::string victim;
  EXPECT_FALSE(TryStealExpiredLease(workdir, 0, "thief", 30.0, &victim));
  // A stolen (vanished) lease is NotFound: the renewer must stop renewing.
  std::remove(lease.c_str());
  EXPECT_EQ(RenewLease(lease).code(), StatusCode::kNotFound);
}

// --- Janitor ----------------------------------------------------------------

TEST_F(DistributedSweepTest, JanitorReclaimsOnlyOldTmpDebris) {
  const std::string workdir = FreshWorkdir("ds_janitor", nullptr);
  const std::string old_tmp = SweepShardsDir(workdir) + "/target-0.json.tmp";
  const std::string fresh_tmp = SweepClaimsDir(workdir) + "/claim.tmp";
  ASSERT_TRUE(WriteFileAtomic(old_tmp, "orphan").ok());
  ASSERT_TRUE(WriteFileAtomic(fresh_tmp, "live writer").ok());
  BackdateFile(old_tmp, 600.0);
  const size_t reclaimed = JanitorSweepTmpDebris(workdir, 30.0);
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_FALSE(FileExists(old_tmp));
  // A young .tmp may belong to a live atomic writer mid-commit.
  EXPECT_TRUE(FileExists(fresh_tmp));
}

TEST_F(DistributedSweepTest, InitializeRunsTheJanitor) {
  const std::string workdir = FreshWorkdir("ds_janitor_init", nullptr);
  const std::string debris = workdir + "/checkpoint.json.tmp";
  ASSERT_TRUE(WriteFileAtomic(debris, "crashed writer").ok());
  BackdateFile(debris, 600.0);
  const std::string fingerprint =
      SweepFingerprint(FastConfig(), zoo::Modality::kImage);
  size_t reclaimed = 0;
  Status init = InitializeSweepWorkdir(workdir, fingerprint, NumTargets(),
                                       30.0, &reclaimed);
  ASSERT_TRUE(init.ok()) << init.ToString();
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_FALSE(FileExists(debris));
}

// --- Two-process crash-safety of atomic publication -------------------------

// Two processes hammering SaveSweepCheckpoint on one path: every concurrent
// read must see a complete, parseable document equal to one writer's full
// payload (atomic rename = last-writer-wins), never a torn interleaving.
TEST_F(DistributedSweepTest, TwoProcessCheckpointRaceNeverTears) {
#ifdef TG_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based race skipped under TSan";
#endif
  const std::string path = TempPath("ds_ckpt_race.json");
  std::remove(path.c_str());

  TargetEvaluation small;
  small.target_dataset = 1;
  small.target_name = "alpha";
  small.model_indices = {0, 1};
  small.predicted = {0.25, 0.5};
  small.actual = {0.3, 0.6};
  TargetEvaluation other = small;
  other.target_name = "beta";

  SweepCheckpoint one;
  one.build_git_sha = "sha";
  one.fingerprint = "fp";
  one.targets = {small};
  SweepCheckpoint two = one;
  two.targets = {small, other};

  ASSERT_TRUE(SaveSweepCheckpoint(path, one).ok());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: no gtest assertions; report failure via exit code.
    for (int i = 0; i < 60; ++i) {
      if (!SaveSweepCheckpoint(path, two).ok()) ::_exit(10);
    }
    ::_exit(0);
  }
  bool saw_one = false;
  bool saw_two = false;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(SaveSweepCheckpoint(path, one).ok());
    Result<SweepCheckpoint> read = LoadSweepCheckpoint(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    const size_t n = read.value().targets.size();
    ASSERT_TRUE(n == 1 || n == 2) << "torn checkpoint with " << n;
    (n == 1 ? saw_one : saw_two) = true;
    EXPECT_EQ(read.value().targets[0].predicted, small.predicted);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
  EXPECT_TRUE(saw_one);  // our own writes are visible at minimum
  // Final state is exactly one writer's complete payload.
  Result<SweepCheckpoint> last = LoadSweepCheckpoint(path);
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(last.value().targets.size() == 1 ||
              last.value().targets.size() == 2);
}

// Duplicate shard publication from two processes (the steal-race shape:
// both compute bit-identical results): every read is complete and equal.
TEST_F(DistributedSweepTest, TwoProcessShardRaceIsIdempotent) {
#ifdef TG_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based race skipped under TSan";
#endif
  const std::string workdir = FreshWorkdir("ds_shard_race", nullptr);
  const std::string fingerprint =
      SweepFingerprint(FastConfig(), zoo::Modality::kImage);
  const std::vector<size_t> targets =
      zoo_->EvaluationTargets(zoo::Modality::kImage);
  TargetEvaluation eval;
  std::string error;
  ASSERT_TRUE(
      pipeline_->TryEvaluateTarget(FastConfig(), targets[0], &eval, &error))
      << error;

  ASSERT_TRUE(WriteSweepShard(workdir, 0, fingerprint, eval).ok());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Unique temp names make each publication a whole-file replace: both
    // racing writers succeed, and the final file never goes missing.
    for (int i = 0; i < 40; ++i) {
      if (!WriteSweepShard(workdir, 0, fingerprint, eval).ok()) ::_exit(10);
      if (!FileExists(SweepShardPath(workdir, 0))) ::_exit(11);
    }
    ::_exit(0);
  }
  for (int i = 0; i < 40; ++i) {
    Status wrote = WriteSweepShard(workdir, 0, fingerprint, eval);
    ASSERT_TRUE(wrote.ok()) << wrote.ToString();
    Result<TargetEvaluation> read = ReadSweepShard(workdir, 0, fingerprint);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read.value().predicted, eval.predicted);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
}

// --- Workers end to end -----------------------------------------------------

TEST_F(DistributedSweepTest, SingleWorkerMergesBitIdenticalToSerial) {
  const std::string serial = SerialCheckpoint("ds_serial_ref.json");
  const std::string workdir = FreshWorkdir("ds_single", nullptr);
  Result<WorkerReport> ran = RunSweepWorker(
      pipeline_.get(), FastConfig(), WorkerOptions(workdir, "w0"));
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_TRUE(ran.value().complete);
  EXPECT_EQ(ran.value().evaluated, NumTargets());
  EXPECT_EQ(ran.value().claims, NumTargets());
  EXPECT_EQ(ran.value().steals, 0u);
  EXPECT_EQ(ran.value().failed, 0u);

  const std::string merged = TempPath("ds_single_merged.json");
  std::remove(merged.c_str());
  Result<MergeReport> merge = MergeSweepShards(pipeline_.get(), FastConfig(),
                                               workdir, merged);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_TRUE(merge.value().ok()) << merge.value().problems[0];
  EXPECT_EQ(merge.value().merged, NumTargets());
  EXPECT_EQ(ReadAll(merged), ReadAll(serial));
}

TEST_F(DistributedSweepTest, TwoConcurrentWorkersPartitionAndMergeIdentical) {
  const std::string serial = SerialCheckpoint("ds_serial_ref2.json");
  const std::string workdir = FreshWorkdir("ds_pair", nullptr);
  Result<WorkerReport> a = Status::Internal("unset");
  Result<WorkerReport> b = Status::Internal("unset");
  std::thread ta([&] {
    a = RunSweepWorker(pipeline_.get(), FastConfig(),
                       WorkerOptions(workdir, "wa"));
  });
  std::thread tb([&] {
    b = RunSweepWorker(pipeline_.get(), FastConfig(),
                       WorkerOptions(workdir, "wb"));
  });
  ta.join();
  tb.join();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a.value().complete);
  EXPECT_TRUE(b.value().complete);
  // Every free token was claimed exactly once; no lease lived long enough
  // to be stolen.
  EXPECT_EQ(a.value().claims + b.value().claims, NumTargets());
  EXPECT_EQ(a.value().steals + b.value().steals, 0u);
  EXPECT_EQ(a.value().evaluated + b.value().evaluated, NumTargets());

  const std::string merged = TempPath("ds_pair_merged.json");
  std::remove(merged.c_str());
  Result<MergeReport> merge = MergeSweepShards(pipeline_.get(), FastConfig(),
                                               workdir, merged);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_TRUE(merge.value().ok()) << merge.value().problems[0];
  EXPECT_EQ(ReadAll(merged), ReadAll(serial));
}

TEST_F(DistributedSweepTest, WorkerFinishesAfterACrashedPredecessor) {
  const std::string serial = SerialCheckpoint("ds_serial_ref3.json");
  const std::string workdir = FreshWorkdir("ds_crash", nullptr);
  // Simulate a kill -9 mid-target: the victim claimed target 0, renewed for
  // a while, then died -- its lease is still on disk with a stale mtime.
  ASSERT_TRUE(TryClaimFreeTarget(workdir, 0, "corpse"));
  BackdateFile(SweepLeasePath(workdir, 0, "corpse"), 120.0);

  DistributedSweepOptions options = WorkerOptions(workdir, "medic");
  options.lease_sec = 30.0;
  Result<WorkerReport> ran =
      RunSweepWorker(pipeline_.get(), FastConfig(), options);
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_TRUE(ran.value().complete);
  EXPECT_EQ(ran.value().steals, 1u);
  EXPECT_EQ(ran.value().lease_expiries, 1u);
  EXPECT_EQ(ran.value().evaluated, NumTargets());

  const std::string merged = TempPath("ds_crash_merged.json");
  std::remove(merged.c_str());
  Result<MergeReport> merge = MergeSweepShards(pipeline_.get(), FastConfig(),
                                               workdir, merged);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_TRUE(merge.value().ok()) << merge.value().problems[0];
  EXPECT_EQ(ReadAll(merged), ReadAll(serial));
}

TEST_F(DistributedSweepTest, DrainStopsBeforeClaimingAndLeavesPoolClean) {
  const std::string workdir = FreshWorkdir("ds_drain", nullptr);
  RequestSweepDrain();
  Result<WorkerReport> ran = RunSweepWorker(
      pipeline_.get(), FastConfig(), WorkerOptions(workdir, "w0"));
  ClearSweepDrain();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_TRUE(ran.value().drained);
  EXPECT_FALSE(ran.value().complete);
  EXPECT_EQ(ran.value().claims, 0u);
  // Nothing leased: a successor can take every target immediately.
  for (size_t i = 0; i < NumTargets(); ++i) {
    EXPECT_TRUE(FileExists(SweepFreePath(workdir, i))) << i;
  }
  Result<WorkerReport> finish = RunSweepWorker(
      pipeline_.get(), FastConfig(), WorkerOptions(workdir, "w1"));
  ASSERT_TRUE(finish.ok()) << finish.status().ToString();
  EXPECT_TRUE(finish.value().complete);
}

// --- Injected fault sites ---------------------------------------------------

TEST_F(DistributedSweepTest, ClaimRenameFaultIsTransient) {
  const std::string workdir = FreshWorkdir("ds_claim_fault", nullptr);
  ASSERT_TRUE(fault::InstallSpec("claim.rename=hit:1").ok());
  Result<WorkerReport> ran = RunSweepWorker(
      pipeline_.get(), FastConfig(), WorkerOptions(workdir, "w0"));
  const uint64_t fired = fault::SiteFired("claim.rename");
  fault::ClearFaults();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  // The first claim attempt lost to the injected fault; the backoff rescan
  // claimed it later. The sweep still completes fully.
  EXPECT_TRUE(ran.value().complete);
  EXPECT_EQ(ran.value().evaluated, NumTargets());
  EXPECT_GE(fired, 1u);
}

TEST_F(DistributedSweepTest, ShardWriteFaultIsRetriedWithBackoff) {
  const std::string workdir = FreshWorkdir("ds_write_fault", nullptr);
  ASSERT_TRUE(fault::InstallSpec("shard.write=hit:1").ok());
  Result<WorkerReport> ran = RunSweepWorker(
      pipeline_.get(), FastConfig(), WorkerOptions(workdir, "w0"));
  fault::ClearFaults();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_TRUE(ran.value().complete);
  EXPECT_EQ(ran.value().evaluated, NumTargets());
  EXPECT_EQ(ran.value().failed, 0u);
}

TEST_F(DistributedSweepTest, MergeReadFaultIsRetriedTransiently) {
  const std::string serial = SerialCheckpoint("ds_serial_ref4.json");
  const std::string workdir = FreshWorkdir("ds_merge_fault", nullptr);
  Result<WorkerReport> ran = RunSweepWorker(
      pipeline_.get(), FastConfig(), WorkerOptions(workdir, "w0"));
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  ASSERT_TRUE(ran.value().complete);

  const std::string merged = TempPath("ds_merge_fault_merged.json");
  std::remove(merged.c_str());
  ASSERT_TRUE(fault::InstallSpec("merge.read=hit:1").ok());
  Result<MergeReport> merge = MergeSweepShards(pipeline_.get(), FastConfig(),
                                               workdir, merged);
  fault::ClearFaults();
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_TRUE(merge.value().ok()) << merge.value().problems[0];
  EXPECT_EQ(ReadAll(merged), ReadAll(serial));
}

// --- Merger validation ------------------------------------------------------

class DistributedMergeValidationTest : public DistributedSweepTest {
 protected:
  // One completed workdir per test, cheap to mutilate.
  void SetUpWorkdir(const std::string& name) {
    workdir_ = FreshWorkdir(name, nullptr);
    Result<WorkerReport> ran = RunSweepWorker(
        pipeline_.get(), FastConfig(), WorkerOptions(workdir_, "w0"));
    ASSERT_TRUE(ran.ok()) << ran.status().ToString();
    ASSERT_TRUE(ran.value().complete);
  }

  Result<MergeReport> Merge() {
    const std::string merged = workdir_ + "/merged.json";
    std::remove(merged.c_str());
    return MergeSweepShards(pipeline_.get(), FastConfig(), workdir_, merged);
  }

  std::string workdir_;
};

TEST_F(DistributedMergeValidationTest, DetectsMissingShard) {
  SetUpWorkdir("ds_merge_missing");
  std::remove(SweepShardPath(workdir_, 3).c_str());
  Result<MergeReport> merge = Merge();
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_EQ(merge.value().problems.size(), 1u);
  EXPECT_NE(merge.value().problems[0].find("missing shard"),
            std::string::npos);
  EXPECT_TRUE(merge.value().artifact_path.empty());
}

TEST_F(DistributedMergeValidationTest, DetectsTornShard) {
  SetUpWorkdir("ds_merge_torn");
  const std::string shard = SweepShardPath(workdir_, 2);
  const std::string contents = ReadAll(shard);
  ASSERT_TRUE(
      WriteFileAtomic(shard, contents.substr(0, contents.size() / 2)).ok());
  Result<MergeReport> merge = Merge();
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_EQ(merge.value().problems.size(), 1u);
  EXPECT_NE(merge.value().problems[0].find("torn or malformed"),
            std::string::npos);
}

TEST_F(DistributedMergeValidationTest, DetectsStaleBuildShard) {
  SetUpWorkdir("ds_merge_stale");
  const std::string shard = SweepShardPath(workdir_, 1);
  std::string contents = ReadAll(shard);
  const std::string key = "\"build_git_sha\":\"";
  const size_t at = contents.find(key);
  ASSERT_NE(at, std::string::npos);
  contents.insert(at + key.size(), "stale-");
  ASSERT_TRUE(WriteFileAtomic(shard, contents).ok());
  Result<MergeReport> merge = Merge();
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_EQ(merge.value().problems.size(), 1u);
  EXPECT_NE(merge.value().problems[0].find("stale build"), std::string::npos);
}

TEST_F(DistributedMergeValidationTest, DetectsDuplicatedShardContent) {
  SetUpWorkdir("ds_merge_dup");
  // Shard 4's payload copied over shard 5 (a duplicated artifact): the
  // index check inside the shard catches the copy.
  ASSERT_TRUE(
      WriteFileAtomic(SweepShardPath(workdir_, 5),
                      ReadAll(SweepShardPath(workdir_, 4)))
          .ok());
  Result<MergeReport> merge = Merge();
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_EQ(merge.value().problems.size(), 1u);
  EXPECT_NE(merge.value().problems[0].find("different target"),
            std::string::npos);
}

TEST_F(DistributedMergeValidationTest, DetectsFailedTargetMarkers) {
  SetUpWorkdir("ds_merge_failed");
  std::remove(SweepShardPath(workdir_, 0).c_str());
  const std::string fingerprint =
      SweepFingerprint(FastConfig(), zoo::Modality::kImage);
  ASSERT_TRUE(WriteSweepFailedMarker(workdir_, 0, fingerprint,
                                     "predictor exploded")
                  .ok());
  Result<MergeReport> merge = Merge();
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  ASSERT_EQ(merge.value().problems.size(), 1u);
  EXPECT_NE(merge.value().problems[0].find("predictor exploded"),
            std::string::npos);
}

TEST_F(DistributedMergeValidationTest, RefusesForeignWorkdir) {
  SetUpWorkdir("ds_merge_foreign");
  // A merger resolving a different strategy computes a different
  // fingerprint and must refuse the workdir outright.
  PipelineConfig other = FastConfig();
  other.seed ^= 1;
  const std::string merged = workdir_ + "/merged.json";
  Result<MergeReport> merge =
      MergeSweepShards(pipeline_.get(), other, workdir_, merged);
  EXPECT_FALSE(merge.ok());
}

}  // namespace
}  // namespace tg::core
