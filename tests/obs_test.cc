// Observability substrate tests: span nesting and parent handoff across
// ParallelFor, histogram bucket math, counter updates from pool workers
// (TSan-clean), exporter JSON validity, and the determinism contract --
// pipeline outputs are bit-identical with tracing on or off.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_util.h"
#include "util/thread_pool.h"

namespace tg {
namespace {

std::vector<obs::SpanRecord> SpansNamed(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : spans) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

// Every test leaves the process in the default quiet state so ordering
// between tests (and with other suites in this binary) does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(false);
    obs::ResetSpans();
  }
  void TearDown() override {
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(false);
    obs::ResetSpans();
    SetThreadCount(0);
  }
};

TEST_F(ObsTest, SpanNestingRecordsParentChain) {
  obs::SetTraceEnabled(true);
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    obs::Span outer("outer_scope");
    outer_id = outer.id();
    EXPECT_EQ(obs::CurrentSpanId(), outer_id);
    {
      obs::Span inner("inner_scope");
      inner_id = inner.id();
      EXPECT_EQ(obs::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(obs::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(obs::CurrentSpanId(), 0u);

  const std::vector<obs::SpanRecord> spans = obs::SnapshotSpans();
  const auto outer_spans = SpansNamed(spans, "outer_scope");
  const auto inner_spans = SpansNamed(spans, "inner_scope");
  ASSERT_EQ(outer_spans.size(), 1u);
  ASSERT_EQ(inner_spans.size(), 1u);
  EXPECT_EQ(outer_spans[0].parent, 0u);
  EXPECT_EQ(inner_spans[0].parent, outer_id);
  EXPECT_GE(inner_spans[0].start_ns, outer_spans[0].start_ns);
  EXPECT_LE(inner_spans[0].end_ns, outer_spans[0].end_ns);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  {
    TG_TRACE_SPAN("invisible");
    EXPECT_EQ(obs::CurrentSpanId(), 0u);
  }
  EXPECT_TRUE(SpansNamed(obs::SnapshotSpans(), "invisible").empty());
}

TEST_F(ObsTest, ResetSpansSectionsTheBuffer) {
  obs::SetTraceEnabled(true);
  { TG_TRACE_SPAN("before_reset"); }
  obs::ResetSpans();
  { TG_TRACE_SPAN("after_reset"); }
  const std::vector<obs::SpanRecord> spans = obs::SnapshotSpans();
  EXPECT_TRUE(SpansNamed(spans, "before_reset").empty());
  EXPECT_EQ(SpansNamed(spans, "after_reset").size(), 1u);
}

TEST_F(ObsTest, ParallelForHandsParentToPoolWorkers) {
  obs::SetTraceEnabled(true);
  SetThreadCount(2);  // force the pool path even on a 1-core host
  constexpr size_t kItems = 256;

  uint64_t outer_id = 0;
  {
    obs::Span outer("pf_outer");
    outer_id = outer.id();
    ParallelFor(0, kItems, 1, [](size_t begin, size_t end, size_t /*chunk*/) {
      for (size_t i = begin; i < end; ++i) {
        TG_TRACE_SPAN("pf_chunk");
      }
    });
  }

  const std::vector<obs::SpanRecord> spans = obs::SnapshotSpans();
  const auto drains = SpansNamed(spans, "pool_drain");
  const auto chunks = SpansNamed(spans, "pf_chunk");
  ASSERT_FALSE(drains.empty());
  EXPECT_EQ(chunks.size(), kItems);

  // Every drain loop -- caller and workers alike -- attaches to the span
  // that enqueued the region, not to whatever that thread traced last.
  for (const obs::SpanRecord& d : drains) {
    EXPECT_EQ(d.parent, outer_id);
  }
  // Chunk spans nest under one of those drains.
  std::vector<uint64_t> drain_ids;
  for (const obs::SpanRecord& d : drains) drain_ids.push_back(d.id);
  for (const obs::SpanRecord& c : chunks) {
    EXPECT_TRUE(std::find(drain_ids.begin(), drain_ids.end(), c.parent) !=
                drain_ids.end())
        << "pf_chunk parent " << c.parent << " is not a pool_drain span";
  }
  // At least one chunk span really ran on a pool worker thread.
  uint32_t caller_tid = drains[0].tid;
  for (const obs::SpanRecord& d : drains) {
    if (d.id == chunks[0].parent) caller_tid = d.tid;
  }
  (void)caller_tid;
  std::vector<uint32_t> tids;
  for (const obs::SpanRecord& c : chunks) tids.push_back(c.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_GE(tids.size(), 1u);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  obs::Histogram h;  // defaults: first_bound 1e-6, growth 2, 36 buckets
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(2), 4e-6);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(h.num_buckets() - 1)));

  h.Observe(5e-7);   // below first bound -> bucket 0
  h.Observe(1e-6);   // exactly on an inclusive upper bound -> bucket 0
  h.Observe(2e-6);   // exactly on bucket 1's bound -> bucket 1
  h.Observe(2.5e-6); // strictly inside bucket 2
  h.Observe(1e9);    // far above the last finite bound -> overflow

  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(h.num_buckets() - 1), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 5e-7);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);

  // Quantiles resolve to bucket upper bounds; the overflow bucket reports
  // the observed max instead of +inf.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2e-6);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1e9);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.BucketCount(0), 0u);
}

TEST_F(ObsTest, CountersAggregateAcrossPoolWorkers) {
  SetThreadCount(4);
  obs::Counter& counter = obs::MetricsRegistry::Instance().GetCounter(
      "obs_test.concurrent_counter");
  counter.Reset();
  obs::Gauge& gauge =
      obs::MetricsRegistry::Instance().GetGauge("obs_test.concurrent_gauge");
  gauge.Reset();
  obs::Histogram& hist = obs::MetricsRegistry::Instance().GetHistogram(
      "obs_test.concurrent_hist");
  hist.Reset();

  constexpr size_t kItems = 10000;
  ParallelFor(0, kItems, 7, [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (size_t i = begin; i < end; ++i) {
      counter.Increment();
      gauge.Add(1.0);
      hist.Observe(1e-6);
    }
  });
  EXPECT_EQ(counter.value(), kItems);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kItems));
  EXPECT_EQ(hist.count(), kItems);
  EXPECT_EQ(hist.BucketCount(0), kItems);
}

TEST_F(ObsTest, SnapshotReportsQuantiles) {
  obs::Histogram& hist = obs::MetricsRegistry::Instance().GetHistogram(
      "obs_test.quantile_hist");
  hist.Reset();
  // 100 observations spread across decades: p50 lands in the middle
  // buckets, p95 and p99 in the tail.
  for (int i = 0; i < 90; ++i) hist.Observe(1e-6);
  for (int i = 0; i < 8; ++i) hist.Observe(1e-3);
  for (int i = 0; i < 2; ++i) hist.Observe(1.0);
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  const obs::HistogramStats& stats =
      snapshot.histograms.at("obs_test.quantile_hist");
  EXPECT_EQ(stats.count, 100u);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_LE(stats.p50, 2e-6);   // within the 1us region
  EXPECT_GE(stats.p95, 1e-3);   // pulled into the millisecond tail
  EXPECT_GE(stats.p99, 0.5);    // the two 1s outliers own the last percent
  // The quantiles also surface in the JSON dump and the rendered table.
  const std::string json = obs::MetricsRegistry::Instance().ToJson();
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string table = obs::MetricsRegistry::Instance().RenderTable();
  EXPECT_NE(table.find("p99"), std::string::npos);
  hist.Reset();
}

TEST_F(ObsTest, SpanFeedsStageHistogramWhenMetricsEnabled) {
  obs::SetMetricsEnabled(true);
  obs::Histogram& stage = obs::StageHistogram("obs_test_stage");
  stage.Reset();
  { TG_TRACE_SPAN("obs_test_stage"); }
  EXPECT_EQ(stage.count(), 1u);

  // Metrics off: the span is a no-op for the histogram too.
  obs::SetMetricsEnabled(false);
  { TG_TRACE_SPAN("obs_test_stage"); }
  EXPECT_EQ(stage.count(), 1u);
}

TEST_F(ObsTest, ExportedJsonValidates) {
  obs::SetTraceEnabled(true);
  obs::SetMetricsEnabled(true);
  {
    // Detail strings with every character class the escaper must handle.
    TG_TRACE_SPAN2("escape_check", "quote \" backslash \\ newline \n tab \t");
    TG_TRACE_SPAN("plain_span");
  }
  obs::MetricsRegistry::Instance()
      .GetCounter("obs_test.export \"quoted\" name")
      .Increment();

  const std::string trace = obs::ChromeTraceJson();
  EXPECT_TRUE(JsonValidate(trace).ok()) << JsonValidate(trace).ToString();
  EXPECT_NE(trace.find("escape_check"), std::string::npos);
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);

  const std::string metrics = obs::MetricsRegistry::Instance().ToJson();
  EXPECT_TRUE(JsonValidate(metrics).ok()) << JsonValidate(metrics).ToString();
  EXPECT_NE(metrics.find("histograms"), std::string::npos);
}

TEST_F(ObsTest, JsonHelpers) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonQuote("x"), "\"x\"");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");

  EXPECT_TRUE(JsonValidate("{\"a\": [1, 2.5, -3e2, true, null]}").ok());
  EXPECT_FALSE(JsonValidate("{").ok());
  EXPECT_FALSE(JsonValidate("{\"a\": 1,}").ok());
  EXPECT_FALSE(JsonValidate("[1 2]").ok());
  EXPECT_FALSE(JsonValidate("{} trailing").ok());
  EXPECT_FALSE(JsonValidate("\"unterminated").ok());
}

// The determinism contract from docs/observability.md: enabling tracing and
// metrics must not perturb pipeline numerics. Two pipelines over the same
// zoo (fresh embedding caches each) must agree bit-for-bit.
TEST_F(ObsTest, PipelineOutputsIdenticalWithTracingOnOrOff) {
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 48;
  zoo_config.catalog.num_text_models = 24;
  zoo_config.world.max_samples_per_dataset = 80;
  zoo::ModelZoo zoo(zoo_config);
  const size_t target = zoo.EvaluationTargets(zoo::Modality::kImage)[0];

  core::PipelineConfig config;
  config.strategy = {core::PredictorKind::kLinearRegression,
                     core::GraphLearner::kNode2Vec, core::FeatureSet::kAll};
  config.node2vec.walk.walks_per_node = 6;
  config.node2vec.walk.walk_length = 15;
  config.node2vec.skipgram.dim = 24;
  config.node2vec.skipgram.epochs = 2;

  core::Pipeline quiet_pipeline(&zoo, zoo::Modality::kImage);
  const core::TargetEvaluation quiet =
      quiet_pipeline.EvaluateTarget(config, target);

  obs::SetTraceEnabled(true);
  obs::SetMetricsEnabled(true);
  core::Pipeline traced_pipeline(&zoo, zoo::Modality::kImage);
  const core::TargetEvaluation traced =
      traced_pipeline.EvaluateTarget(config, target);

  ASSERT_EQ(traced.predicted.size(), quiet.predicted.size());
  for (size_t i = 0; i < quiet.predicted.size(); ++i) {
    EXPECT_EQ(traced.predicted[i], quiet.predicted[i]) << "model " << i;
  }
  EXPECT_EQ(traced.pearson, quiet.pearson);

  // And the traced run actually produced spans for the pipeline stages.
  const std::vector<obs::SpanRecord> spans = obs::SnapshotSpans();
  EXPECT_FALSE(SpansNamed(spans, "evaluate_target").empty());
  EXPECT_FALSE(SpansNamed(spans, "walk_corpus").empty());
}

}  // namespace
}  // namespace tg
