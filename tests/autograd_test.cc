#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "util/rng.h"

namespace tg::autograd {
namespace {

// Numerically verifies d(loss)/d(param) for a scalar-valued builder that
// reconstructs the graph from the parameter values on every call.
void CheckGradient(
    const std::function<Var(const std::vector<Var>&)>& build_loss,
    std::vector<Matrix> initial_values, double tol = 1e-5) {
  // Analytic gradients.
  std::vector<Var> params;
  params.reserve(initial_values.size());
  for (const Matrix& v : initial_values) params.push_back(MakeParameter(v));
  Var loss = build_loss(params);
  Backward(loss);

  const double eps = 1e-6;
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t r = 0; r < initial_values[p].rows(); ++r) {
      for (size_t c = 0; c < initial_values[p].cols(); ++c) {
        auto eval_at = [&](double delta) {
          std::vector<Var> perturbed;
          for (size_t q = 0; q < initial_values.size(); ++q) {
            Matrix v = initial_values[q];
            if (q == p) v(r, c) += delta;
            perturbed.push_back(MakeParameter(v));
          }
          return build_loss(perturbed)->value()(0, 0);
        };
        const double numeric = (eval_at(eps) - eval_at(-eps)) / (2 * eps);
        const double analytic =
            params[p]->grad().empty() ? 0.0 : params[p]->grad()(r, c);
        EXPECT_NEAR(analytic, numeric, tol)
            << "param " << p << " entry (" << r << "," << c << ")";
      }
    }
  }
}

Matrix Rand(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng, 0.0, 0.8);
}

TEST(AutogradTest, AddGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) { return Sum(Add(p[0], p[1])); },
      {Rand(2, 3, 1), Rand(2, 3, 2)});
}

TEST(AutogradTest, SubMulGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(Mul(Sub(p[0], p[1]), p[0]));
      },
      {Rand(2, 2, 3), Rand(2, 2, 4)});
}

TEST(AutogradTest, ScaleGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) { return Sum(Scale(p[0], -2.5)); },
      {Rand(3, 2, 5)});
}

TEST(AutogradTest, MatMulGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) { return Sum(MatMul(p[0], p[1])); },
      {Rand(3, 4, 6), Rand(4, 2, 7)});
}

TEST(AutogradTest, ChainedMatMulGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Mean(Tanh(MatMul(Relu(MatMul(p[0], p[1])), p[2])));
      },
      {Rand(3, 3, 8), Rand(3, 4, 9), Rand(4, 2, 10)}, 1e-4);
}

TEST(AutogradTest, AddRowBroadcastGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(Sigmoid(AddRowBroadcast(p[0], p[1])));
      },
      {Rand(4, 3, 11), Rand(1, 3, 12)});
}

TEST(AutogradTest, MulColBroadcastGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(MulColBroadcast(p[0], p[1]));
      },
      {Rand(4, 3, 13), Rand(4, 1, 14)});
}

TEST(AutogradTest, RowsDotGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(Sigmoid(RowsDot(p[0], p[1])));
      },
      {Rand(5, 3, 15), Rand(5, 3, 16)});
}

TEST(AutogradTest, ConcatColsGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(Tanh(ConcatCols(p[0], p[1])));
      },
      {Rand(3, 2, 17), Rand(3, 4, 18)});
}

TEST(AutogradTest, ActivationGradients) {
  for (int which = 0; which < 6; ++which) {
    CheckGradient(
        [which](const std::vector<Var>& p) {
          switch (which) {
            case 0:
              return Sum(Relu(p[0]));
            case 1:
              return Sum(LeakyRelu(p[0], 0.2));
            case 2:
              return Sum(Sigmoid(p[0]));
            case 3:
              return Sum(Tanh(p[0]));
            case 4:
              return Sum(Exp(p[0]));
            default:
              return Sum(Elu(p[0]));
          }
        },
        {Rand(3, 3, 20 + which)}, 1e-4);
  }
}

TEST(AutogradTest, LogGradient) {
  // Keep inputs positive and away from the epsilon clamp.
  Rng rng(30);
  Matrix positive = Matrix::Uniform(3, 3, &rng, 0.5, 2.0);
  CheckGradient(
      [](const std::vector<Var>& p) { return Sum(Log(p[0])); }, {positive});
}

TEST(AutogradTest, MeanGradient) {
  CheckGradient([](const std::vector<Var>& p) { return Mean(p[0]); },
                {Rand(4, 5, 31)});
}

TEST(AutogradTest, GatherRowsGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        // Repeated indices must accumulate gradient.
        return Sum(Tanh(GatherRows(p[0], {0, 2, 2, 1, 0})));
      },
      {Rand(3, 4, 32)});
}

TEST(AutogradTest, ScatterAddRowsGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(Tanh(ScatterAddRows(p[0], {1, 0, 1, 3}, 4)));
      },
      {Rand(4, 3, 33)});
}

TEST(AutogradTest, SegmentSoftmaxValuesSumToOnePerSegment) {
  Var scores = MakeParameter(Rand(6, 1, 34));
  Var out = SegmentSoftmax(scores, {0, 0, 1, 1, 1, 2});
  double seg0 = out->value()(0, 0) + out->value()(1, 0);
  double seg1 = out->value()(2, 0) + out->value()(3, 0) + out->value()(4, 0);
  double seg2 = out->value()(5, 0);
  EXPECT_NEAR(seg0, 1.0, 1e-12);
  EXPECT_NEAR(seg1, 1.0, 1e-12);
  EXPECT_NEAR(seg2, 1.0, 1e-12);
}

TEST(AutogradTest, SegmentSoftmaxGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) {
        Var alpha = SegmentSoftmax(p[0], {0, 0, 1, 1, 1});
        // Weighted sum so the gradient is non-trivial per entry.
        Var weights = MakeConstant(Matrix::ColumnVector({1, 2, 3, 4, 5}));
        return Sum(Mul(alpha, weights));
      },
      {Rand(5, 1, 35)});
}

TEST(AutogradTest, BceWithLogitsMatchesManual) {
  Matrix logits = Matrix::ColumnVector({2.0, -1.0, 0.0});
  Matrix targets = Matrix::ColumnVector({1.0, 0.0, 1.0});
  Var loss = BceWithLogits(MakeParameter(logits), MakeConstant(targets));
  double expected = 0.0;
  expected += -std::log(1.0 / (1.0 + std::exp(-2.0)));
  expected += -std::log(1.0 - 1.0 / (1.0 + std::exp(1.0)));
  expected += -std::log(0.5);
  EXPECT_NEAR(loss->value()(0, 0), expected / 3.0, 1e-10);
}

TEST(AutogradTest, BceWithLogitsGradient) {
  Matrix targets = Matrix::ColumnVector({1.0, 0.0, 1.0, 0.0});
  CheckGradient(
      [targets](const std::vector<Var>& p) {
        return BceWithLogits(p[0], MakeConstant(targets));
      },
      {Rand(4, 1, 36)});
}

TEST(AutogradTest, MseLossGradient) {
  CheckGradient(
      [](const std::vector<Var>& p) { return MseLoss(p[0], p[1]); },
      {Rand(3, 2, 37), Rand(3, 2, 38)});
}

TEST(AutogradTest, L2PenaltyGradient) {
  CheckGradient([](const std::vector<Var>& p) { return L2Penalty(p[0]); },
                {Rand(3, 3, 39)});
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  // f(x) = sum(x) + sum(x) -> grad = 2 everywhere.
  Var x = MakeParameter(Matrix(2, 2, 1.0));
  Var loss = Add(Sum(x), Sum(x));
  Backward(loss);
  EXPECT_DOUBLE_EQ(x->grad()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(x->grad()(1, 1), 2.0);
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  Var c = MakeConstant(Matrix(2, 2, 1.0));
  Var x = MakeParameter(Matrix(2, 2, 1.0));
  Var loss = Sum(Mul(c, x));
  Backward(loss);
  EXPECT_TRUE(c->grad().empty());
  EXPECT_FALSE(x->grad().empty());
}

TEST(AutogradTest, ZeroGradResets) {
  Var x = MakeParameter(Matrix(1, 1, 2.0));
  Var loss = Sum(Mul(x, x));
  Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), 4.0, 1e-12);
  x->ZeroGrad();
  EXPECT_TRUE(x->grad().empty());
}

TEST(AutogradTest, DiamondDependencyGradient) {
  // y = a*b + a*c shares `a` along two paths.
  CheckGradient(
      [](const std::vector<Var>& p) {
        return Sum(Add(Mul(p[0], p[1]), Mul(p[0], p[2])));
      },
      {Rand(2, 2, 40), Rand(2, 2, 41), Rand(2, 2, 42)});
}

}  // namespace
}  // namespace tg::autograd
