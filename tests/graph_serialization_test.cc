#include <cstdio>

#include <gtest/gtest.h>

#include "graph/serialization.h"

namespace tg {
namespace {

Graph MakeGraph() {
  Graph g;
  NodeId d0 = g.AddNode(NodeType::kDataset, "cifar100");
  NodeId d1 = g.AddNode(NodeType::kDataset, "pets");
  NodeId m0 = g.AddNode(NodeType::kModel, "resnet-50-v0");
  g.AddUndirectedEdge(d0, d1, EdgeType::kDatasetDataset, 0.75);
  g.AddUndirectedEdge(m0, d0, EdgeType::kModelDatasetAccuracy, 0.91);
  g.AddUndirectedEdge(m0, d1, EdgeType::kModelDatasetTransferability,
                      0.6180339887498949);
  return g;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphSerializationTest, RoundTripPreservesEverything) {
  Graph original = MakeGraph();
  const std::string path = TempPath("graph_roundtrip.tsv");
  ASSERT_TRUE(WriteGraphToFile(original, path).ok());

  Result<Graph> loaded = ReadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Graph& g = loaded.value();
  ASSERT_EQ(g.num_nodes(), original.num_nodes());
  ASSERT_EQ(g.num_undirected_edges(), original.num_undirected_edges());
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    EXPECT_EQ(g.node_type(id), original.node_type(id));
    EXPECT_EQ(g.node_name(id), original.node_name(id));
  }
  for (size_t e = 0; e < g.edges().size(); ++e) {
    EXPECT_EQ(g.edges()[e].src, original.edges()[e].src);
    EXPECT_EQ(g.edges()[e].dst, original.edges()[e].dst);
    EXPECT_EQ(g.edges()[e].type, original.edges()[e].type);
    // Weights survive exactly (printed with 17 significant digits).
    EXPECT_DOUBLE_EQ(g.edges()[e].weight, original.edges()[e].weight);
  }
}

TEST(GraphSerializationTest, MissingFileIsNotFound) {
  Result<Graph> r = ReadGraphFromFile(TempPath("does_not_exist.tsv"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GraphSerializationTest, RejectsMissingHeader) {
  const std::string path = TempPath("graph_no_header.tsv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("node\t0\tdataset\tx\n", f);
  std::fclose(f);
  EXPECT_FALSE(ReadGraphFromFile(path).ok());
}

TEST(GraphSerializationTest, RejectsBadEdgeEndpoint) {
  const std::string path = TempPath("graph_bad_edge.tsv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# transfergraph v1\n", f);
  std::fputs("node\t0\tdataset\tx\n", f);
  std::fputs("node\t1\tmodel\ty\n", f);
  std::fputs("edge\t0\t9\tdd\t0.5\n", f);
  std::fclose(f);
  EXPECT_FALSE(ReadGraphFromFile(path).ok());
}

TEST(GraphSerializationTest, RejectsUnknownTypes) {
  const std::string path = TempPath("graph_bad_type.tsv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# transfergraph v1\n", f);
  std::fputs("node\t0\tblob\tx\n", f);
  std::fclose(f);
  EXPECT_FALSE(ReadGraphFromFile(path).ok());
}

TEST(GraphSerializationTest, EmptyGraphRoundTrips) {
  const std::string path = TempPath("graph_empty.tsv");
  ASSERT_TRUE(WriteGraphToFile(Graph(), path).ok());
  Result<Graph> loaded = ReadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 0u);
}

}  // namespace
}  // namespace tg
