#include <gtest/gtest.h>

#include "core/strategy.h"
#include "util/rng.h"

namespace tg::core {
namespace {

TEST(StrategyTest, PaperStyleDisplayNames) {
  Strategy tg_all{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
                  FeatureSet::kAll};
  EXPECT_EQ(tg_all.DisplayName(), "TG:LR,N2V,all");

  Strategy tg_graph_only{PredictorKind::kXgboost, GraphLearner::kNode2VecPlus,
                         FeatureSet::kGraphOnly};
  EXPECT_EQ(tg_graph_only.DisplayName(), "TG:XGB,N2V+");

  Strategy tg_sage{PredictorKind::kRandomForest, GraphLearner::kGraphSage,
                   FeatureSet::kAll};
  EXPECT_EQ(tg_sage.DisplayName(), "TG:RF,GraphSAGE,all");

  Strategy lr_baseline{PredictorKind::kLinearRegression, GraphLearner::kNone,
                       FeatureSet::kMetadataOnly};
  EXPECT_EQ(lr_baseline.DisplayName(), "LR");

  Strategy lr_all{PredictorKind::kLinearRegression, GraphLearner::kNone,
                  FeatureSet::kAllWithLogMe};
  EXPECT_EQ(lr_all.DisplayName(), "LR{all,LogME}");
}

TEST(StrategyTest, UsesGraphFeatures) {
  Strategy with_graph{PredictorKind::kXgboost, GraphLearner::kGat,
                      FeatureSet::kAll};
  EXPECT_TRUE(with_graph.UsesGraphFeatures());

  Strategy learner_but_meta{PredictorKind::kXgboost, GraphLearner::kGat,
                            FeatureSet::kMetadataOnly};
  EXPECT_FALSE(learner_but_meta.UsesGraphFeatures());

  Strategy no_learner{PredictorKind::kXgboost, GraphLearner::kNone,
                      FeatureSet::kAll};
  EXPECT_FALSE(no_learner.UsesGraphFeatures());
}

TEST(StrategyTest, MakePredictorKinds) {
  EXPECT_EQ(MakePredictor(PredictorKind::kLinearRegression)->name(), "LR");
  EXPECT_EQ(MakePredictor(PredictorKind::kRandomForest)->name(), "RF");
  EXPECT_EQ(MakePredictor(PredictorKind::kXgboost)->name(), "XGB");
}

TEST(StrategyTest, EnumNames) {
  EXPECT_STREQ(GraphLearnerName(GraphLearner::kNode2VecPlus), "N2V+");
  EXPECT_STREQ(PredictorKindName(PredictorKind::kRandomForest), "RF");
  EXPECT_STREQ(PredictorKindName(PredictorKind::kAuto), "Auto");
  EXPECT_STREQ(FeatureSetName(FeatureSet::kGraphOnly), "graph-only");
}

TEST(StrategyTest, SelectPredictorByCvPicksLinearOnLinearData) {
  Rng rng(9);
  ml::TabularDataset data;
  data.x = Matrix::Gaussian(240, 4, &rng);
  data.y.resize(240);
  for (size_t i = 0; i < 240; ++i) {
    data.y[i] = 1.5 * data.x(i, 0) - 0.5 * data.x(i, 3) +
                0.02 * rng.NextGaussian();
  }
  PredictorSettings settings;
  settings.gbdt.num_trees = 60;
  settings.random_forest.num_trees = 30;
  EXPECT_EQ(SelectPredictorByCv(data, settings),
            PredictorKind::kLinearRegression);
}

}  // namespace
}  // namespace tg::core
