#include "util/thread_pool.h"

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "ml/gbdt.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace tg {
namespace {

// Every test restores the default thread count, including on failure.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadCount(0); }
};

TEST_F(ThreadPoolTest, ThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadCount(), 1u);
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3u);
  SetThreadCount(0);
  EXPECT_GE(ThreadCount(), 1u);
}

TEST_F(ThreadPoolTest, EmptyRangeNeverInvokesFunction) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](size_t, size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, SingleItemRangeRunsOnce) {
  std::atomic<int> calls{0};
  ParallelFor(4, 5, 16, [&](size_t begin, size_t end, size_t chunk) {
    EXPECT_EQ(begin, 4u);
    EXPECT_EQ(end, 5u);
    EXPECT_EQ(chunk, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(ThreadPoolTest, CoversEveryItemExactlyOnce) {
  SetThreadCount(4);
  const size_t n = 1001;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, 17, [&](size_t begin, size_t end, size_t chunk) {
    for (size_t i = begin; i < end; ++i) {
      EXPECT_EQ(i / 17, chunk);
      ++hits[i];
    }
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_F(ThreadPoolTest, PropagatesExceptionFromWorkerChunk) {
  SetThreadCount(4);
  EXPECT_THROW(
      ParallelFor(0, 64, 1,
                  [&](size_t begin, size_t, size_t) {
                    if (begin == 13) throw std::runtime_error("chunk 13");
                  }),
      std::runtime_error);
  // The pool must stay usable after an exception drained.
  std::atomic<int> calls{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInlineWithSameChunking) {
  SetThreadCount(4);
  const size_t outer = 8, inner = 100;
  std::vector<double> results(outer, 0.0);
  ParallelFor(0, outer, 1, [&](size_t b, size_t e, size_t) {
    for (size_t o = b; o < e; ++o) {
      std::vector<double> partial((inner + 9) / 10, 0.0);
      ParallelFor(0, inner, 10, [&](size_t ib, size_t ie, size_t chunk) {
        for (size_t i = ib; i < ie; ++i) {
          partial[chunk] += static_cast<double>(o * inner + i);
        }
      });
      results[o] = std::accumulate(partial.begin(), partial.end(), 0.0);
    }
  });
  for (size_t o = 0; o < outer; ++o) {
    double expect = 0.0;
    for (size_t i = 0; i < inner; ++i) {
      expect += static_cast<double>(o * inner + i);
    }
    EXPECT_DOUBLE_EQ(results[o], expect) << o;
  }
}

TEST_F(ThreadPoolTest, ExceptionInsideNestedParallelForPropagates) {
  SetThreadCount(4);
  EXPECT_THROW(
      ParallelFor(0, 4, 1,
                  [&](size_t, size_t, size_t) {
                    ParallelFor(0, 4, 1, [&](size_t, size_t, size_t) {
                      throw std::runtime_error("nested");
                    });
                  }),
      std::runtime_error);
}

// Per-chunk seeded work must not depend on the thread count (the contract
// every parallel component in the pipeline builds on).
TEST_F(ThreadPoolTest, ChunkSeededWorkIsThreadCountInvariant) {
  const Rng base(99);
  auto run = [&] {
    const size_t n = 512;
    std::vector<uint64_t> draws(n);
    ParallelFor(0, n, 8, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        Rng item_rng = base.Fork(i);
        draws[i] = item_rng.NextUint64();
      }
    });
    return draws;
  };
  SetThreadCount(1);
  const std::vector<uint64_t> serial = run();
  SetThreadCount(4);
  const std::vector<uint64_t> parallel = run();
  EXPECT_EQ(serial, parallel);
}

// Below the minimum-work threshold the heuristic must not touch the pool:
// every chunk runs inline on the calling thread with the same boundaries and
// chunk indices ParallelFor would have produced.
TEST_F(ThreadPoolTest, ParallelForIfWorthRunsSmallWorkInline) {
  SetThreadCount(4);
  obs::Counter& inline_runs = obs::MetricsRegistry::Instance().GetCounter(
      "thread_pool.parallel_for.inline_small_work");
  const uint64_t before = inline_runs.value();
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> chunk_of(100, size_t(-1));
  ParallelForIfWorth(
      0, 100, 7, kMinParallelWork - 1,
      [&](size_t begin, size_t end, size_t chunk) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        for (size_t i = begin; i < end; ++i) chunk_of[i] = chunk;
      });
  EXPECT_EQ(inline_runs.value() - before, 1u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(chunk_of[i], i / 7) << i;  // ParallelFor's chunking exactly
  }
}

TEST_F(ThreadPoolTest, ParallelForIfWorthDispatchesLargeWork) {
  SetThreadCount(4);
  obs::Counter& inline_runs = obs::MetricsRegistry::Instance().GetCounter(
      "thread_pool.parallel_for.inline_small_work");
  obs::Counter& pf_calls = obs::MetricsRegistry::Instance().GetCounter(
      "thread_pool.parallel_for.calls");
  const uint64_t inline_before = inline_runs.value();
  const uint64_t calls_before = pf_calls.value();
  std::vector<std::atomic<int>> hits(256);
  ParallelForIfWorth(0, 256, 8, kMinParallelWork,
                     [&](size_t begin, size_t end, size_t) {
                       for (size_t i = begin; i < end; ++i) ++hits[i];
                     });
  EXPECT_EQ(inline_runs.value() - inline_before, 0u);
  EXPECT_EQ(pf_calls.value() - calls_before, 1u);  // delegated to ParallelFor
  for (size_t i = 0; i < 256; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// Both sides of the threshold must compute the same thing: per-item results
// from chunk-seeded work are identical whether the heuristic inlines or
// dispatches (the determinism contract extends to ParallelForIfWorth).
TEST_F(ThreadPoolTest, ParallelForIfWorthResultIndependentOfThreshold) {
  SetThreadCount(4);
  const Rng base(1234);
  auto run = [&](size_t estimated_work) {
    const size_t n = 300;
    std::vector<uint64_t> draws(n);
    ParallelForIfWorth(0, n, 16, estimated_work,
                       [&](size_t begin, size_t end, size_t chunk) {
                         for (size_t i = begin; i < end; ++i) {
                           EXPECT_EQ(i / 16, chunk);
                           draws[i] = base.Fork(i).NextUint64();
                         }
                       });
    return draws;
  };
  EXPECT_EQ(run(0), run(kMinParallelWork * 2));
}

// The GBDT regression this heuristic fixes: tiny fits must not pay pool
// dispatch. A small dataset's binning/histogram/prediction loops all fall
// under kMinParallelWork, so Fit should add inline-run counter ticks.
TEST_F(ThreadPoolTest, SmallGbdtFitStaysInline) {
  SetThreadCount(4);
  ml::TabularDataset data;
  const size_t n = 40, d = 3;
  Rng rng(5);
  data.x = Matrix(n, d);
  data.y.resize(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) data.x(r, c) = rng.NextGaussian();
    data.y[r] = data.x(r, 0) * 2.0 + rng.NextGaussian(0.0, 0.1);
  }
  obs::Counter& inline_runs = obs::MetricsRegistry::Instance().GetCounter(
      "thread_pool.parallel_for.inline_small_work");
  const uint64_t before = inline_runs.value();
  ml::GbdtConfig config;
  config.num_trees = 20;
  config.max_depth = 3;
  ml::Gbdt gbdt(config);
  ASSERT_TRUE(gbdt.Fit(data).ok());
  EXPECT_GT(inline_runs.value(), before);
}

// End-to-end determinism: the full leave-one-out evaluation (walks,
// skip-gram, forests, parallel targets, shared caches) must be bit-identical
// at 1 and 4 threads. Fresh zoo + pipeline per run so no cache carries over.
TEST_F(ThreadPoolTest, EvaluateAllTargetsBitIdenticalAcrossThreadCounts) {
  auto evaluate = [] {
    zoo::ModelZooConfig zc;
    zc.catalog.num_image_models = 32;
    zc.catalog.num_text_models = 12;
    zc.world.max_samples_per_dataset = 60;
    zoo::ModelZoo zoo(zc);
    core::Pipeline pipeline(&zoo, zoo::Modality::kImage);
    core::PipelineConfig config;
    config.strategy = {core::PredictorKind::kXgboost,
                       core::GraphLearner::kNode2Vec, core::FeatureSet::kAll};
    config.node2vec.walk.walks_per_node = 4;
    config.node2vec.walk.walk_length = 10;
    config.node2vec.skipgram.dim = 16;
    config.node2vec.skipgram.epochs = 1;
    config.predictor.gbdt.num_trees = 20;
    return pipeline.EvaluateAllTargets(config);
  };
  SetThreadCount(1);
  const std::vector<core::TargetEvaluation> serial = evaluate();
  SetThreadCount(4);
  const std::vector<core::TargetEvaluation> parallel = evaluate();

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].target_dataset, parallel[i].target_dataset);
    EXPECT_EQ(serial[i].model_indices, parallel[i].model_indices);
    // Exact double comparison on purpose: the contract is bit-identity.
    EXPECT_EQ(serial[i].predicted, parallel[i].predicted) << i;
    EXPECT_EQ(serial[i].actual, parallel[i].actual) << i;
    EXPECT_EQ(serial[i].pearson, parallel[i].pearson) << i;
    EXPECT_EQ(serial[i].spearman, parallel[i].spearman) << i;
  }
}

}  // namespace
}  // namespace tg
