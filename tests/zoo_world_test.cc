#include <cmath>

#include <gtest/gtest.h>

#include "numeric/stats.h"
#include "zoo/synthetic_world.h"

namespace tg::zoo {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  WorldTest() {
    CatalogOptions catalog_options;
    catalog_options.num_image_models = 40;
    catalog_options.num_text_models = 24;
    catalog_ = BuildCatalog(catalog_options);
    WorldConfig config;
    config.max_samples_per_dataset = 150;
    world_ = std::make_unique<SyntheticWorld>(catalog_, config);
  }

  size_t FindDataset(const std::string& name) const {
    for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
      if (catalog_.datasets[d].name == name) return d;
    }
    ADD_FAILURE() << "missing dataset " << name;
    return 0;
  }

  Catalog catalog_;
  std::unique_ptr<SyntheticWorld> world_;
};

TEST_F(WorldTest, AffinityBounds) {
  for (size_t m = 0; m < catalog_.models.size(); m += 3) {
    for (size_t d = 0; d < catalog_.datasets.size(); d += 7) {
      const double a = world_->Affinity(m, d);
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST_F(WorldTest, ModelsPreferTheirSourceDomain) {
  // A model's affinity with its own source dataset should on average beat
  // its affinity with a random dataset of another domain group.
  double own = 0.0;
  double other = 0.0;
  int count = 0;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    const size_t source = catalog_.models[m].source_dataset;
    const DatasetInfo& src = catalog_.datasets[source];
    for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
      const DatasetInfo& ds = catalog_.datasets[d];
      if (ds.modality != src.modality || ds.domain == src.domain) continue;
      own += world_->Affinity(m, source);
      other += world_->Affinity(m, d);
      ++count;
      break;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(own / count, other / count + 0.05);
}

TEST_F(WorldTest, SameDomainDatasetsHaveCorrelatedLatents) {
  // Datasets in the same domain group share the group direction.
  const size_t caltech = FindDataset("caltech101");
  const size_t cifar = FindDataset("cifar100");   // same domain (generic)
  const size_t dtd = FindDataset("dtd");          // textures
  const auto& a = world_->DatasetLatent(caltech);
  const auto& b = world_->DatasetLatent(cifar);
  const auto& c = world_->DatasetLatent(dtd);
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
}

TEST_F(WorldTest, CapacityNormalizedPerModality) {
  double min_cap = 1e9;
  double max_cap = -1e9;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kImage) continue;
    min_cap = std::min(min_cap, world_->Capacity(m));
    max_cap = std::max(max_cap, world_->Capacity(m));
  }
  EXPECT_NEAR(min_cap, 0.0, 1e-9);
  EXPECT_NEAR(max_cap, 1.0, 1e-9);
}

TEST_F(WorldTest, DifficultyTracksClassCount) {
  // ImageNet-21k (21841 classes) should be harder than eurosat (10 classes).
  EXPECT_GT(world_->Difficulty(FindDataset("imagenet21k")),
            world_->Difficulty(FindDataset("eurosat")));
}

TEST_F(WorldTest, PretrainAccuracyInRange) {
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    EXPECT_GE(world_->PretrainAccuracy(m), 0.3);
    EXPECT_LE(world_->PretrainAccuracy(m), 0.99);
  }
}

TEST_F(WorldTest, SamplesShapeAndLabels) {
  const size_t flowers = FindDataset("flowers");
  const DatasetSamples& samples = world_->Samples(flowers);
  EXPECT_EQ(samples.num_classes, 10);
  EXPECT_EQ(samples.labels.size(), samples.latent.rows());
  EXPECT_EQ(samples.ambient.rows(), samples.latent.rows());
  EXPECT_LE(samples.latent.rows(), 150u);
  for (int label : samples.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, samples.num_classes);
  }
}

TEST_F(WorldTest, SamplesCached) {
  const size_t pets = FindDataset("pets");
  const DatasetSamples& a = world_->Samples(pets);
  const DatasetSamples& b = world_->Samples(pets);
  EXPECT_EQ(&a, &b);
}

TEST_F(WorldTest, ClassCapRespected) {
  const size_t cars = FindDataset("stanfordcars");  // 196 classes
  const DatasetSamples& samples = world_->Samples(cars);
  EXPECT_LE(samples.num_classes, 32);
}

TEST_F(WorldTest, ExtractedFeaturesShape) {
  const size_t dtd = FindDataset("dtd");
  Matrix f = world_->ExtractFeatures(0, dtd);
  EXPECT_EQ(f.rows(), world_->Samples(dtd).latent.rows());
  EXPECT_EQ(f.cols(), world_->config().feature_dim);
}

TEST_F(WorldTest, HighAffinityModelsGetMoreSeparableFeatures) {
  // Pick the image model with max vs min affinity to a target; class
  // separation (between/within distance ratio) should be larger for the
  // high-affinity model.
  const size_t target = FindDataset("stanfordcars");
  size_t best_model = 0, worst_model = 0;
  double best = -1.0, worst = 2.0;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kImage) continue;
    const double a = world_->Affinity(m, target);
    if (a > best) {
      best = a;
      best_model = m;
    }
    if (a < worst) {
      worst = a;
      worst_model = m;
    }
  }
  ASSERT_GT(best, worst);

  auto separation = [&](size_t model) {
    const DatasetSamples& samples = world_->Samples(target);
    Matrix f = world_->ExtractFeatures(model, target);
    // Between-class variance of per-class means over total variance.
    const int k = samples.num_classes;
    Matrix class_mean(k, f.cols());
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < f.rows(); ++i) {
      const int y = samples.labels[i];
      ++counts[y];
      for (size_t c = 0; c < f.cols(); ++c) class_mean(y, c) += f(i, c);
    }
    for (int y = 0; y < k; ++y) {
      for (size_t c = 0; c < f.cols(); ++c) {
        class_mean(y, c) /= std::max(counts[y], 1);
      }
    }
    double between = 0.0;
    for (int y = 0; y < k; ++y) {
      for (size_t c = 0; c < f.cols(); ++c) {
        between += class_mean(y, c) * class_mean(y, c);
      }
    }
    return between;
  };
  EXPECT_GT(separation(best_model), separation(worst_model));
}

TEST_F(WorldTest, SourceProbabilitiesAreDistributions) {
  const size_t svhn = FindDataset("svhn");
  Matrix probs = world_->SourceProbabilities(0, svhn);
  EXPECT_EQ(probs.rows(), world_->Samples(svhn).latent.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    double total = 0.0;
    for (size_t z = 0; z < probs.cols(); ++z) {
      EXPECT_GE(probs(i, z), 0.0);
      total += probs(i, z);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(WorldTest, HardLabelsMatchArgmax) {
  const size_t svhn = FindDataset("svhn");
  Matrix probs = world_->SourceProbabilities(3, svhn);
  std::vector<int> hard = world_->SourceHardLabels(3, svhn);
  ASSERT_EQ(hard.size(), probs.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    for (size_t z = 0; z < probs.cols(); ++z) {
      EXPECT_LE(probs(i, z), probs(i, static_cast<size_t>(hard[i])) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace tg::zoo
