// Memory-accounting and bench-history tests: span-level allocation
// attribution (inclusive of children), concurrent tracking under
// ParallelFor (TSan-clean), the determinism contract with tracking on, the
// resource sampler, build provenance, Gauge::Add accumulation from many
// threads, and the BENCH_history.json parse/serialize/compare cycle.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/bench_history.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/json_util.h"
#include "util/thread_pool.h"
#include "zoo/model_zoo.h"

namespace tg {
namespace {

// Allocates `bytes` through operator new and defeats dead-store elimination
// by touching the buffer.
void BurnHeap(size_t bytes) {
  std::unique_ptr<volatile char[]> buffer(new char[bytes]);
  buffer[0] = 1;
  buffer[bytes - 1] = 2;
}

std::vector<obs::SpanRecord> SpansNamed(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : spans) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

// Restores the default quiet state so test ordering does not matter.
class ObsMemoryTest : public ::testing::Test {
 protected:
  void SetUp() override { Quiet(); }
  void TearDown() override { Quiet(); }

  static void Quiet() {
    obs::SetMemoryTrackingEnabled(false);
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(false);
    obs::ResetSpans();
    SetThreadCount(0);
  }
};

TEST_F(ObsMemoryTest, ThreadCountersTrackAllocations) {
  obs::SetMemoryTrackingEnabled(true);
  const obs::AllocStats before = obs::ThreadAllocStats();
  BurnHeap(1 << 20);
  const obs::AllocStats delta = obs::ThreadAllocStats() - before;
  EXPECT_GE(delta.bytes, 1u << 20);
  EXPECT_GE(delta.count, 1u);
}

TEST_F(ObsMemoryTest, DisabledTrackingFreezesCounters) {
  obs::SetMemoryTrackingEnabled(true);
  BurnHeap(4096);  // ensure this thread's counters exist
  obs::SetMemoryTrackingEnabled(false);
  const obs::AllocStats before = obs::ThreadAllocStats();
  BurnHeap(1 << 20);
  const obs::AllocStats delta = obs::ThreadAllocStats() - before;
  EXPECT_EQ(delta.bytes, 0u);
  EXPECT_EQ(delta.count, 0u);
}

TEST_F(ObsMemoryTest, SpanRecordsAttributeAllocationsInclusively) {
  obs::SetMemoryTrackingEnabled(true);
  obs::SetTraceEnabled(true);
  {
    obs::Span outer("mem_outer");
    BurnHeap(1 << 20);  // 1 MiB directly in the outer span
    {
      obs::Span inner("mem_inner");
      BurnHeap(2 << 20);  // 2 MiB in the child
    }
  }
  const std::vector<obs::SpanRecord> spans = obs::SnapshotSpans();
  const auto outer_spans = SpansNamed(spans, "mem_outer");
  const auto inner_spans = SpansNamed(spans, "mem_inner");
  ASSERT_EQ(outer_spans.size(), 1u);
  ASSERT_EQ(inner_spans.size(), 1u);
  EXPECT_GE(inner_spans[0].alloc_bytes, 2u << 20);
  // Inclusive semantics: the outer span owns its own 1 MiB plus the child's.
  EXPECT_GE(outer_spans[0].alloc_bytes, (3u << 20));
  EXPECT_GE(outer_spans[0].allocs, inner_spans[0].allocs);
}

TEST_F(ObsMemoryTest, UntrackedSpansReportZero) {
  obs::SetTraceEnabled(true);  // tracing on, memory tracking off
  {
    obs::Span span("mem_untracked");
    BurnHeap(1 << 20);
  }
  const auto spans = SpansNamed(obs::SnapshotSpans(), "mem_untracked");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].alloc_bytes, 0u);
  EXPECT_EQ(spans[0].allocs, 0u);
}

TEST_F(ObsMemoryTest, StageAllocHistogramFedWhenMetricsEnabled) {
  obs::SetMemoryTrackingEnabled(true);
  obs::SetTraceEnabled(true);
  obs::SetMetricsEnabled(true);
  {
    obs::Span span("mem_histogram_stage");
    BurnHeap(1 << 20);
  }
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  auto it = snapshot.histograms.find("stage.mem_histogram_stage.alloc_bytes");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_GE(it->second.count, 1u);
  EXPECT_GE(it->second.sum, static_cast<double>(1u << 20));
}

// Every worker allocates under tracking; the per-thread counters must not
// race (this binary runs under TSan in run_checks.sh) and the total must
// cover every allocation regardless of which pool thread performed it.
TEST_F(ObsMemoryTest, ConcurrentTrackingSumsAcrossThreads) {
  SetThreadCount(4);
  obs::SetMemoryTrackingEnabled(true);
  const obs::AllocStats before = obs::TotalAllocStats();
  constexpr size_t kTasks = 64;
  constexpr size_t kBytesPerTask = 64 * 1024;
  std::atomic<uint64_t> done{0};
  ParallelFor(0, kTasks, 1, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      BurnHeap(kBytesPerTask);
      done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const obs::AllocStats delta = obs::TotalAllocStats() - before;
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GE(delta.bytes, kTasks * kBytesPerTask);
  EXPECT_GE(delta.count, kTasks);
}

// The determinism contract: allocation accounting must not perturb pipeline
// numerics. EvaluateAllTargets exercises the parallel leave-one-out sweep.
TEST_F(ObsMemoryTest, PipelineOutputsIdenticalWithTrackingOnOrOff) {
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 32;
  zoo_config.catalog.num_text_models = 16;
  zoo_config.world.max_samples_per_dataset = 60;
  zoo::ModelZoo zoo(zoo_config);

  core::PipelineConfig config;
  config.strategy = {core::PredictorKind::kLinearRegression,
                     core::GraphLearner::kNode2Vec, core::FeatureSet::kAll};
  config.node2vec.walk.walks_per_node = 4;
  config.node2vec.walk.walk_length = 12;
  config.node2vec.skipgram.dim = 16;
  config.node2vec.skipgram.epochs = 2;

  core::Pipeline quiet_pipeline(&zoo, zoo::Modality::kImage);
  const std::vector<core::TargetEvaluation> quiet =
      quiet_pipeline.EvaluateAllTargets(config);

  obs::SetMemoryTrackingEnabled(true);
  obs::SetTraceEnabled(true);
  obs::SetMetricsEnabled(true);
  core::Pipeline tracked_pipeline(&zoo, zoo::Modality::kImage);
  const std::vector<core::TargetEvaluation> tracked =
      tracked_pipeline.EvaluateAllTargets(config);

  ASSERT_EQ(tracked.size(), quiet.size());
  for (size_t t = 0; t < quiet.size(); ++t) {
    ASSERT_EQ(tracked[t].predicted.size(), quiet[t].predicted.size());
    for (size_t i = 0; i < quiet[t].predicted.size(); ++i) {
      EXPECT_EQ(tracked[t].predicted[i], quiet[t].predicted[i])
          << "target " << t << " model " << i;
    }
    EXPECT_EQ(tracked[t].pearson, quiet[t].pearson) << "target " << t;
  }
}

TEST_F(ObsMemoryTest, ResourceUsageReadsProcSelf) {
  const obs::ResourceUsage usage = obs::ReadSelfResourceUsage();
  ASSERT_TRUE(usage.ok);
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GE(usage.peak_rss_bytes, usage.rss_bytes);
}

TEST_F(ObsMemoryTest, ResourceSamplerCollectsSamples) {
  obs::ResourceSampler& sampler = obs::ResourceSampler::Instance();
  sampler.ClearSamples();
  obs::ResourceSamplerOptions options;
  options.interval_ms = 1;
  sampler.Start(options);
  // The loop takes a sample immediately, and Stop() takes a final one, so
  // no sleep is needed for a deterministic lower bound of two.
  sampler.Stop();
  const std::vector<obs::ResourceSample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_GT(samples.back().usage.rss_bytes, 0u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_ns, samples[i - 1].t_ns);
  }
  sampler.ClearSamples();
}

TEST_F(ObsMemoryTest, BuildInfoIsStamped) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_FALSE(info.sanitizer.empty());
  EXPECT_GE(info.cxx_standard, 202002L);  // the build is -std=c++20
  EXPECT_TRUE(JsonValidate(BuildInfoJson()).ok());
}

// Gauge::Add must accumulate fractional deltas from many threads without
// losing updates (C++20 atomic<double> fetch_add, or the CAS fallback).
TEST_F(ObsMemoryTest, GaugeAddAccumulatesAcrossThreads) {
  SetThreadCount(4);
  obs::Gauge& gauge =
      obs::MetricsRegistry::Instance().GetGauge("test.obs_memory.gauge_add");
  gauge.Set(0.0);
  constexpr size_t kUpdates = 1000;
  ParallelFor(0, kUpdates, 1, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) gauge.Add(0.25);
  });
  EXPECT_DOUBLE_EQ(gauge.value(), 0.25 * kUpdates);
}

// --- bench history ---

obs::BenchRun MakeRun(const std::string& sha, double graph_s, double gbdt_s,
                      uint64_t rss) {
  obs::BenchRun run;
  run.timestamp = "2026-01-01T00:00:00Z";
  run.git_sha = sha;
  run.compiler = "GNU 12.2.0";
  run.flags = "-O2";
  run.build_type = "Release";
  run.sanitizer = "none";
  run.tg_threads = 4;
  run.peak_rss_bytes = rss;
  run.stage_seconds["graph_build@4"] = graph_s;
  run.stage_seconds["gbdt_fit@4"] = gbdt_s;
  return run;
}

TEST(BenchHistoryTest, TimingsJsonParsesIntoRun) {
  const std::string json = R"({
    "build_info": {"git_sha": "abc1234", "compiler": "GNU 12.2.0",
                   "flags": "-O2", "build_type": "Release",
                   "sanitizer": "none", "cxx_standard": 202002,
                   "tg_threads": 8},
    "resources": {"peak_rss_bytes": 123456789, "rss_bytes": 100000000,
                  "major_faults": 3},
    "timings": [
      {"component": "graph_build", "threads": 8, "wall_seconds": 1.25},
      {"component": "skipgram", "threads": 1, "wall_seconds": 0.5}
    ],
    "metrics": {}
  })";
  Result<obs::BenchRun> run =
      obs::BenchRunFromTimingsJson(json, "2026-01-02T03:04:05Z");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().timestamp, "2026-01-02T03:04:05Z");
  EXPECT_EQ(run.value().git_sha, "abc1234");
  EXPECT_EQ(run.value().tg_threads, 8u);
  EXPECT_EQ(run.value().peak_rss_bytes, 123456789u);
  ASSERT_EQ(run.value().stage_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(run.value().stage_seconds.at("graph_build@8"), 1.25);
  EXPECT_DOUBLE_EQ(run.value().stage_seconds.at("skipgram@1"), 0.5);
}

TEST(BenchHistoryTest, MalformedTimingsRejected) {
  EXPECT_FALSE(obs::BenchRunFromTimingsJson("not json", "t").ok());
  EXPECT_FALSE(obs::BenchRunFromTimingsJson("{}", "t").ok());
  EXPECT_FALSE(
      obs::BenchRunFromTimingsJson(R"({"timings": [{"component": 3}]})", "t")
          .ok());
}

TEST(BenchHistoryTest, HistoryRoundTripsThroughJson) {
  std::vector<obs::BenchRun> runs = {MakeRun("aaa", 1.0, 2.0, 1000),
                                     MakeRun("bbb", 1.1, 1.9, 1100)};
  const std::string json = obs::HistoryToJson(runs);
  ASSERT_TRUE(JsonValidate(json).ok());
  Result<std::vector<obs::BenchRun>> parsed = obs::ParseHistoryJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[1].git_sha, "bbb");
  EXPECT_EQ(parsed.value()[0].peak_rss_bytes, 1000u);
  EXPECT_DOUBLE_EQ(parsed.value()[1].stage_seconds.at("graph_build@4"), 1.1);
  EXPECT_EQ(parsed.value()[0].tg_threads, 4u);
}

TEST(BenchHistoryTest, UnsupportedSchemaRejected) {
  EXPECT_FALSE(obs::ParseHistoryJson(R"({"schema": 99, "runs": []})").ok());
  EXPECT_FALSE(obs::ParseHistoryJson(R"({"runs": []})").ok());
}

TEST(BenchHistoryTest, CompareFlagsTimeRegression) {
  const obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  const obs::BenchRun latest = MakeRun("bbb", 2.0, 2.0, 1000);  // 2x slower
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, obs::CompareOptions{});
  EXPECT_TRUE(report.has_baseline);
  EXPECT_FALSE(report.ok);
  size_t regressed = 0;
  for (const obs::StageDelta& delta : report.stages) {
    if (delta.regressed) {
      ++regressed;
      EXPECT_EQ(delta.stage, "graph_build@4");
      EXPECT_DOUBLE_EQ(delta.ratio, 2.0);
    }
  }
  EXPECT_EQ(regressed, 1u);
  EXPECT_NE(report.Render().find("REGRESSION"), std::string::npos);
}

TEST(BenchHistoryTest, ComparePassesOnImprovementAndNoise) {
  const obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  // One stage 2x faster, the other within the 1.30 threshold.
  const obs::BenchRun latest = MakeRun("bbb", 0.5, 2.4, 1000);
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, obs::CompareOptions{});
  EXPECT_TRUE(report.ok);
  EXPECT_NE(report.Render().find("bench-compare: OK"), std::string::npos);
}

TEST(BenchHistoryTest, CompareIgnoresStagesBelowNoiseFloor) {
  obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  obs::BenchRun latest = MakeRun("bbb", 1.0, 2.0, 1000);
  baseline.stage_seconds["tiny@4"] = 0.001;
  latest.stage_seconds["tiny@4"] = 0.009;  // 9x, but sub-millisecond noise
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, obs::CompareOptions{});
  EXPECT_TRUE(report.ok);
  bool found_tiny = false;
  for (const obs::StageDelta& delta : report.stages) {
    if (delta.stage == "tiny@4") {
      found_tiny = true;
      EXPECT_TRUE(delta.skipped_below_floor);
      EXPECT_FALSE(delta.regressed);
    }
  }
  EXPECT_TRUE(found_tiny);
}

TEST(BenchHistoryTest, CompareFlagsRssRegression) {
  const obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  const obs::BenchRun latest = MakeRun("bbb", 1.0, 2.0, 1600);  // 1.6x RSS
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, obs::CompareOptions{});
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.rss_regressed);
  EXPECT_DOUBLE_EQ(report.rss_ratio, 1.6);
}

TEST(BenchHistoryTest, CompareNotesBuildMismatchWithoutFailing) {
  const obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  obs::BenchRun latest = MakeRun("bbb", 1.0, 2.0, 1000);
  latest.sanitizer = "thread";
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, obs::CompareOptions{});
  EXPECT_TRUE(report.ok);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("build stamps differ"), std::string::npos);
}

TEST(BenchHistoryTest, MissingBaselineRendersAsPassing) {
  const obs::CompareReport report;  // default: has_baseline = false
  EXPECT_TRUE(report.ok);
  EXPECT_NE(report.Render().find("nothing to compare"), std::string::npos);
}

TEST(BenchHistoryTest, StageCeilingPassesUnderAndFailsOver) {
  const obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  const obs::BenchRun latest = MakeRun("bbb", 0.9, 2.0, 1000);
  obs::CompareOptions options;
  options.stage_max_seconds["graph_build@4"] = 1.0;
  obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, options);
  EXPECT_TRUE(report.ok);
  ASSERT_EQ(report.ceilings.size(), 1u);
  EXPECT_EQ(report.ceilings[0].stage, "graph_build@4");
  EXPECT_DOUBLE_EQ(report.ceilings[0].latest_seconds, 0.9);
  EXPECT_FALSE(report.ceilings[0].regressed);
  EXPECT_NE(report.Render().find("ceiling"), std::string::npos);

  // The ceiling binds on the LATEST run even when the ratio gate passes:
  // baseline 2.0 -> latest 1.5 is a 0.75 ratio improvement, yet over an
  // absolute 1.0s ceiling.
  const obs::BenchRun slow = MakeRun("ccc", 1.5, 2.0, 1000);
  const obs::BenchRun slow_baseline = MakeRun("ddd", 2.0, 2.0, 1000);
  report = obs::CompareBenchRuns(slow_baseline, slow, options);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.ceilings.size(), 1u);
  EXPECT_TRUE(report.ceilings[0].regressed);
  EXPECT_FALSE(report.ceilings[0].missing);
}

TEST(BenchHistoryTest, StageCeilingMissingStageRegresses) {
  // A gate whose stage vanished from the bench is a silent gap, not a pass.
  const obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  const obs::BenchRun latest = MakeRun("bbb", 1.0, 2.0, 1000);
  obs::CompareOptions options;
  options.stage_max_seconds["not_measured@1"] = 0.5;
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, options);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.ceilings.size(), 1u);
  EXPECT_TRUE(report.ceilings[0].missing);
  EXPECT_TRUE(report.ceilings[0].regressed);
  EXPECT_NE(report.Render().find("missing"), std::string::npos);
}

TEST(BenchHistoryTest, EvaluateCeilingsWorksWithoutBaseline) {
  // The standalone evaluator backs the single-run path in the CLI: a fresh
  // history (one run) must still enforce absolute ceilings.
  const obs::BenchRun only = MakeRun("aaa", 0.3, 2.0, 1000);
  std::map<std::string, double> ceilings;
  ceilings["graph_build@4"] = 0.38;
  ceilings["gbdt_fit@4"] = 1.0;
  const std::vector<obs::CeilingDelta> deltas =
      obs::EvaluateCeilings(ceilings, only);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_FALSE(deltas[1].regressed);  // graph_build 0.3 <= 0.38
  EXPECT_TRUE(deltas[0].regressed);   // gbdt 2.0 > 1.0
}

TEST(BenchHistoryTest, StageSetChangesAreNotedNotFailed) {
  obs::BenchRun baseline = MakeRun("aaa", 1.0, 2.0, 1000);
  obs::BenchRun latest = MakeRun("bbb", 1.0, 2.0, 1000);
  baseline.stage_seconds["removed@4"] = 1.0;
  latest.stage_seconds["added@4"] = 1.0;
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, obs::CompareOptions{});
  EXPECT_TRUE(report.ok);
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  ASSERT_EQ(report.only_in_latest.size(), 1u);
  EXPECT_EQ(report.only_in_baseline[0], "removed@4");
  EXPECT_EQ(report.only_in_latest[0], "added@4");
}

}  // namespace
}  // namespace tg
