#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace tg::nn {
namespace {

using autograd::MakeConstant;
using autograd::MakeParameter;
using autograd::Var;

TEST(InitTest, GlorotUniformBounds) {
  Rng rng(1);
  Matrix w = GlorotUniform(100, 50, &rng);
  const double bound = std::sqrt(6.0 / 150.0);
  EXPECT_LE(w.MaxAbs(), bound + 1e-12);
  // Not degenerate.
  EXPECT_GT(w.MaxAbs(), bound * 0.5);
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  Matrix w = HeNormal(400, 400, &rng);
  double sum_sq = 0.0;
  for (size_t r = 0; r < w.rows(); ++r) {
    for (size_t c = 0; c < w.cols(); ++c) sum_sq += w(r, c) * w(r, c);
  }
  const double var = sum_sq / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 400.0, 2.0 / 400.0 * 0.1);
}

TEST(LinearTest, ForwardShape) {
  Rng rng(3);
  Linear layer(4, 6, &rng);
  Var x = MakeConstant(Matrix::Gaussian(10, 4, &rng));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->value().rows(), 10u);
  EXPECT_EQ(y->value().cols(), 6u);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(4);
  Linear layer(3, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize ||x - 3||^2 elementwise.
  Var x = MakeParameter(Matrix(2, 2, 0.0));
  Sgd opt({x}, 0.1);
  Var target = MakeConstant(Matrix(2, 2, 3.0));
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Var loss = autograd::MseLoss(x, target);
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(x->value()(0, 0), 3.0, 1e-3);
}

TEST(SgdTest, WeightDecayShrinks) {
  Var x = MakeParameter(Matrix(1, 1, 5.0));
  Sgd opt({x}, 0.1, /*weight_decay=*/1.0);
  // Zero-gradient loss: only decay acts.
  for (int step = 0; step < 10; ++step) {
    opt.ZeroGrad();
    Var loss = autograd::Sum(autograd::Scale(x, 0.0));
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(x->value()(0, 0), 5.0);
  EXPECT_GT(x->value()(0, 0), 0.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Var x = MakeParameter(Matrix(3, 1, -4.0));
  Adam opt({x}, 0.05);
  Var target = MakeConstant(Matrix(3, 1, 1.5));
  for (int step = 0; step < 500; ++step) {
    opt.ZeroGrad();
    Var loss = autograd::MseLoss(x, target);
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(x->value()(0, 0), 1.5, 1e-2);
}

TEST(AdamTest, LearnsLinearMap) {
  // Train y = x W + b on synthetic data with a two-layer setup.
  Rng rng(7);
  Matrix x_data = Matrix::Gaussian(64, 3, &rng);
  Matrix w_true = Matrix::FromRows({{1.0}, {-2.0}, {0.5}});
  Matrix y_data = x_data.MatMul(w_true);
  for (size_t r = 0; r < y_data.rows(); ++r) y_data(r, 0) += 0.7;

  Linear layer(3, 1, &rng);
  Adam opt(layer.Parameters(), 0.05);
  Var x = MakeConstant(x_data);
  Var y = MakeConstant(y_data);
  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    opt.ZeroGrad();
    Var loss = autograd::MseLoss(layer.Forward(x), y);
    autograd::Backward(loss);
    opt.Step();
    final_loss = loss->value()(0, 0);
  }
  EXPECT_LT(final_loss, 1e-3);
  EXPECT_NEAR(layer.weight()->value()(0, 0), 1.0, 0.05);
  EXPECT_NEAR(layer.bias()->value()(0, 0), 0.7, 0.05);
}

}  // namespace
}  // namespace tg::nn
