#include <cmath>

#include <gtest/gtest.h>

#include "transferability/hscore.h"
#include "transferability/leep.h"
#include "transferability/logme.h"
#include "transferability/nce.h"
#include "transferability/parc.h"
#include "util/rng.h"

namespace tg {
namespace {

// Features with class structure: centers +/- separation along each dim.
struct LabeledFeatures {
  Matrix features;
  std::vector<int> labels;
};

LabeledFeatures MakeSeparable(size_t n, size_t dim, int classes,
                              double separation, uint64_t seed) {
  Rng rng(seed);
  LabeledFeatures data;
  data.features = Matrix(n, dim);
  data.labels.resize(n);
  std::vector<std::vector<double>> centers(classes);
  for (auto& c : centers) {
    c.resize(dim);
    for (double& v : c) v = separation * rng.NextGaussian();
  }
  for (size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % classes);
    data.labels[i] = y;
    for (size_t d = 0; d < dim; ++d) {
      data.features(i, d) = centers[y][d] + rng.NextGaussian();
    }
  }
  return data;
}

// --- LogME ---

TEST(LogMeTest, InformativeFeaturesScoreHigher) {
  LabeledFeatures good = MakeSeparable(300, 16, 4, 3.0, 1);
  LabeledFeatures noise = MakeSeparable(300, 16, 4, 0.0, 2);
  double s_good = LogMeScore(good.features, good.labels, 4).value();
  double s_noise = LogMeScore(noise.features, noise.labels, 4).value();
  EXPECT_GT(s_good, s_noise + 0.05);
}

TEST(LogMeTest, MonotoneInSeparation) {
  double prev = -1e18;
  for (double sep : {0.0, 1.0, 3.0}) {
    LabeledFeatures data = MakeSeparable(400, 12, 3, sep, 3);
    double score = LogMeScore(data.features, data.labels, 3).value();
    EXPECT_GT(score, prev);
    prev = score;
  }
}

TEST(LogMeTest, EvidenceOfPerfectlyPredictableTargetIsHigh) {
  Rng rng(4);
  Matrix f = Matrix::Gaussian(200, 8, &rng);
  std::vector<double> target(200);
  for (size_t i = 0; i < 200; ++i) target[i] = f(i, 0) * 2.0 - f(i, 3);
  std::vector<double> random_target(200);
  for (double& t : random_target) t = rng.NextGaussian();
  double predictable = LogMeEvidence(f, target).value();
  double random = LogMeEvidence(f, random_target).value();
  EXPECT_GT(predictable, random);
}

TEST(LogMeTest, InputValidation) {
  Matrix f(10, 4);
  std::vector<int> labels(10, 0);
  EXPECT_FALSE(LogMeScore(Matrix(), labels, 2).ok());
  EXPECT_FALSE(LogMeScore(f, std::vector<int>(5, 0), 2).ok());
  EXPECT_FALSE(LogMeScore(f, labels, 1).ok());
  std::vector<int> bad = labels;
  bad[0] = 7;
  EXPECT_FALSE(LogMeScore(f, bad, 2).ok());
}

TEST(LogMeTest, DeterministicScore) {
  LabeledFeatures data = MakeSeparable(150, 8, 3, 2.0, 5);
  double a = LogMeScore(data.features, data.labels, 3).value();
  double b = LogMeScore(data.features, data.labels, 3).value();
  EXPECT_DOUBLE_EQ(a, b);
}

// --- LEEP ---

TEST(LeepTest, AlignedSourcePredictionsScoreHigher) {
  const size_t n = 300;
  Rng rng(6);
  // Aligned: source class z == target label y with prob 0.9.
  Matrix aligned(n, 3);
  Matrix uninformative(n, 3, 1.0 / 3.0);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int y = static_cast<int>(i % 3);
    labels[i] = y;
    for (int z = 0; z < 3; ++z) aligned(i, z) = z == y ? 0.9 : 0.05;
  }
  double s_aligned = LeepScore(aligned, labels, 3).value();
  double s_flat = LeepScore(uninformative, labels, 3).value();
  EXPECT_GT(s_aligned, s_flat + 0.1);
}

TEST(LeepTest, ScoreIsNonPositiveLogLikelihood) {
  Matrix probs(10, 2, 0.5);
  std::vector<int> labels(10, 0);
  for (size_t i = 5; i < 10; ++i) labels[i] = 1;
  double score = LeepScore(probs, labels, 2).value();
  EXPECT_LE(score, 0.0);
  // With flat predictions the empirical predictor equals the marginal: log 0.5.
  EXPECT_NEAR(score, std::log(0.5), 1e-9);
}

TEST(LeepTest, InputValidation) {
  EXPECT_FALSE(LeepScore(Matrix(), {0}, 2).ok());
  EXPECT_FALSE(LeepScore(Matrix(3, 2), {0, 1}, 2).ok());
  EXPECT_FALSE(LeepScore(Matrix(2, 2), {0, 5}, 2).ok());
}

// --- NCE ---

TEST(NceTest, PerfectAlignmentGivesZero) {
  std::vector<int> z = {0, 1, 2, 0, 1, 2};
  // y is a deterministic function of z -> H(Y|Z) = 0 -> NCE = 0.
  std::vector<int> y = {5, 6, 7, 5, 6, 7};
  EXPECT_NEAR(NceScore(z, y).value(), 0.0, 1e-12);
}

TEST(NceTest, IndependentLabelsGiveNegative) {
  Rng rng(7);
  std::vector<int> z(2000);
  std::vector<int> y(2000);
  for (size_t i = 0; i < z.size(); ++i) {
    z[i] = static_cast<int>(rng.NextBelow(4));
    y[i] = static_cast<int>(rng.NextBelow(4));
  }
  const double score = NceScore(z, y).value();
  // H(Y|Z) ~ log 4.
  EXPECT_NEAR(score, -std::log(4.0), 0.05);
}

TEST(NceTest, MoreInformativeSourceScoresHigher) {
  Rng rng(8);
  std::vector<int> y(1000);
  std::vector<int> z_good(1000);
  std::vector<int> z_bad(1000);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<int>(rng.NextBelow(3));
    z_good[i] = rng.NextBernoulli(0.9) ? y[i] : static_cast<int>(
                                                    rng.NextBelow(3));
    z_bad[i] = static_cast<int>(rng.NextBelow(3));
  }
  EXPECT_GT(NceScore(z_good, y).value(), NceScore(z_bad, y).value() + 0.2);
}

TEST(NceTest, InputValidation) {
  EXPECT_FALSE(NceScore({}, {}).ok());
  EXPECT_FALSE(NceScore({0, 1}, {0}).ok());
}

// --- PARC ---

TEST(ParcTest, SeparableFeaturesScoreHigher) {
  LabeledFeatures good = MakeSeparable(200, 12, 4, 4.0, 9);
  LabeledFeatures noise = MakeSeparable(200, 12, 4, 0.0, 10);
  double s_good = ParcScore(good.features, good.labels, 4).value();
  double s_noise = ParcScore(noise.features, noise.labels, 4).value();
  EXPECT_GT(s_good, s_noise + 10.0);  // PARC is scaled by 100
}

TEST(ParcTest, BoundedByHundred) {
  LabeledFeatures data = MakeSeparable(100, 8, 2, 5.0, 11);
  double score = ParcScore(data.features, data.labels, 2).value();
  EXPECT_LE(score, 100.0);
  EXPECT_GE(score, -100.0);
}

TEST(ParcTest, SubsamplingKeepsScoreStable) {
  LabeledFeatures data = MakeSeparable(800, 10, 3, 3.0, 12);
  ParcOptions small;
  small.max_samples = 128;
  ParcOptions large;
  large.max_samples = 512;
  double a = ParcScore(data.features, data.labels, 3, small).value();
  double b = ParcScore(data.features, data.labels, 3, large).value();
  EXPECT_NEAR(a, b, 15.0);
}

TEST(ParcTest, InputValidation) {
  EXPECT_FALSE(ParcScore(Matrix(2, 3), {0, 1}, 2).ok());  // too few samples
  EXPECT_FALSE(ParcScore(Matrix(5, 3), {0, 1, 0, 1}, 2).ok());
}

// --- H-Score ---

TEST(HScoreTest, SeparableFeaturesScoreHigher) {
  LabeledFeatures good = MakeSeparable(300, 10, 4, 3.0, 13);
  LabeledFeatures noise = MakeSeparable(300, 10, 4, 0.0, 14);
  double s_good = HScore(good.features, good.labels, 4).value();
  double s_noise = HScore(noise.features, noise.labels, 4).value();
  EXPECT_GT(s_good, s_noise + 0.5);
}

TEST(HScoreTest, NonNegativeAndBoundedByDim) {
  // tr(cov^{-1} cov_between) is between 0 and d (between <= total).
  LabeledFeatures data = MakeSeparable(400, 8, 3, 2.0, 15);
  double score = HScore(data.features, data.labels, 3).value();
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 8.0 + 1e-6);
}

TEST(HScoreTest, InvariantToFeatureScaling) {
  LabeledFeatures data = MakeSeparable(300, 6, 3, 2.0, 16);
  double base = HScore(data.features, data.labels, 3).value();
  Matrix scaled = data.features * 10.0;
  double after = HScore(scaled, data.labels, 3).value();
  // Whitening makes H-Score scale invariant (up to the tiny ridge term).
  EXPECT_NEAR(base, after, 0.05);
}

TEST(HScoreTest, InputValidation) {
  EXPECT_FALSE(HScore(Matrix(), {}, 2).ok());
  EXPECT_FALSE(HScore(Matrix(4, 2), {0, 1}, 2).ok());
  EXPECT_FALSE(HScore(Matrix(4, 2), {0, 1, 0, 1}, 1).ok());
  EXPECT_FALSE(HScore(Matrix(4, 2), {0, 9, 0, 1}, 2).ok());
}

}  // namespace
}  // namespace tg
