#include <vector>

#include <gtest/gtest.h>

#include "graph/alias_table.h"
#include "util/rng.h"

namespace tg {
namespace {

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.Sample(&rng), 1u);
}

TEST(AliasTableTest, EmpiricalMatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected, 0.01);
  }
}

TEST(AliasTableTest, HighlySkewedWeights) {
  AliasTable table({1e-6, 1.0});
  Rng rng(4);
  int rare = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table.Sample(&rng) == 0) ++rare;
  }
  EXPECT_LT(rare, 10);
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable table(std::vector<double>(7, 1.0));
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 600);
}

TEST(AliasTableTest, DefaultIsEmpty) {
  AliasTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace tg
