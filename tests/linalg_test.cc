#include <cmath>

#include <gtest/gtest.h>

#include "numeric/linalg.h"
#include "util/rng.h"

namespace tg {
namespace {

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a = Matrix::Gaussian(n + 4, n, rng);
  Matrix spd = a.TransposedMatMul(a);
  for (size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

TEST(CholeskyTest, FactorReconstructs) {
  Rng rng(1);
  Matrix a = RandomSpd(6, &rng);
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix reconstructed = l.value().MatMulTransposed(l.value());
  EXPECT_LT((reconstructed - a).MaxAbs(), 1e-9);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  Result<Matrix> r = CholeskyFactor(a);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskySolveTest, SolvesKnownSystem) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Matrix b = Matrix::ColumnVector({10, 8});
  Result<Matrix> x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  Matrix ax = a.MatMul(x.value());
  EXPECT_NEAR(ax(0, 0), 10.0, 1e-10);
  EXPECT_NEAR(ax(1, 0), 8.0, 1e-10);
}

TEST(CholeskySolveTest, MultipleRightHandSides) {
  Rng rng(3);
  Matrix a = RandomSpd(5, &rng);
  Matrix b = Matrix::Gaussian(5, 3, &rng);
  Result<Matrix> x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT((a.MatMul(x.value()) - b).MaxAbs(), 1e-8);
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.value().eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value().eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.value().eigenvalues[1], 3.0, 1e-10);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Rng rng(5);
  Matrix a = RandomSpd(8, &rng);
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(w) V^T.
  const Matrix& v = eig.value().eigenvectors;
  Matrix vd = v;
  for (size_t r = 0; r < vd.rows(); ++r) {
    for (size_t c = 0; c < vd.cols(); ++c) {
      vd(r, c) *= eig.value().eigenvalues[c];
    }
  }
  Matrix reconstructed = vd.MatMulTransposed(v);
  EXPECT_LT((reconstructed - a).MaxAbs(), 1e-8);
}

TEST(SymmetricEigenTest, EigenvectorsOrthonormal) {
  Rng rng(7);
  Matrix a = RandomSpd(6, &rng);
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  const Matrix& v = eig.value().eigenvectors;
  Matrix gram = v.TransposedMatMul(v);
  EXPECT_LT((gram - Matrix::Identity(6)).MaxAbs(), 1e-9);
}

TEST(SymmetricEigenTest, RejectsAsymmetric) {
  Matrix a = Matrix::FromRows({{1, 2}, {0, 1}});
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(ThinSvdTest, ReconstructsTallMatrix) {
  Rng rng(9);
  Matrix a = Matrix::Gaussian(20, 6, &rng);
  Result<SingularValueDecomposition> svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  const auto& s = svd.value();
  ASSERT_EQ(s.singular_values.size(), 6u);
  // U diag(s) V^T == A.
  Matrix us = s.u;
  for (size_t r = 0; r < us.rows(); ++r) {
    for (size_t c = 0; c < us.cols(); ++c) {
      us(r, c) *= s.singular_values[c];
    }
  }
  Matrix reconstructed = us.MatMulTransposed(s.v);
  EXPECT_LT((reconstructed - a).MaxAbs(), 1e-7);
}

TEST(ThinSvdTest, SingularValuesDescending) {
  Rng rng(11);
  Matrix a = Matrix::Gaussian(15, 5, &rng);
  Result<SingularValueDecomposition> svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 1; i < svd.value().singular_values.size(); ++i) {
    EXPECT_GE(svd.value().singular_values[i - 1],
              svd.value().singular_values[i]);
  }
}

TEST(ThinSvdTest, RankDeficientDropsZeroSingulars) {
  // Two identical columns -> rank 1.
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Result<SingularValueDecomposition> svd = ThinSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd.value().singular_values.size(), 1u);
  EXPECT_NEAR(svd.value().singular_values[0],
              std::sqrt(2.0 * (1 + 4 + 9)), 1e-9);
}

TEST(ThinSvdTest, RejectsEmpty) { EXPECT_FALSE(ThinSvd(Matrix()).ok()); }

TEST(RidgeSolveTest, RecoversCoefficientsAtLowPenalty) {
  Rng rng(13);
  Matrix x = Matrix::Gaussian(200, 4, &rng);
  Matrix w_true = Matrix::ColumnVector({1.0, -2.0, 0.5, 3.0});
  Matrix y = x.MatMul(w_true);
  Result<Matrix> w = RidgeSolve(x, y, 1e-8);
  ASSERT_TRUE(w.ok());
  EXPECT_LT((w.value() - w_true).MaxAbs(), 1e-5);
}

TEST(RidgeSolveTest, PenaltyShrinksCoefficients) {
  Rng rng(15);
  Matrix x = Matrix::Gaussian(50, 3, &rng);
  Matrix y = Matrix::Gaussian(50, 1, &rng);
  Matrix w_small = RidgeSolve(x, y, 0.01).value();
  Matrix w_large = RidgeSolve(x, y, 1000.0).value();
  EXPECT_LT(w_large.FrobeniusNorm(), w_small.FrobeniusNorm());
}

TEST(RidgeSolveTest, RejectsNegativePenalty) {
  EXPECT_FALSE(RidgeSolve(Matrix(3, 2), Matrix(3, 1), -1.0).ok());
}

TEST(RidgeSolveTest, RejectsRowMismatch) {
  EXPECT_FALSE(RidgeSolve(Matrix(3, 2), Matrix(4, 1), 1.0).ok());
}

}  // namespace
}  // namespace tg
