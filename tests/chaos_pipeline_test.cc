// Chaos tests for the resumable leave-one-out sweep: checkpoint resume must
// be bit-identical to an uninterrupted run at any thread count, randomized
// fault schedules must never crash the sweep or tear an artifact, and a
// fault-free rerun after chaos must reproduce the reference exactly.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/sweep_checkpoint.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace tg::core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

class ChaosPipelineTest : public ::testing::Test {
 protected:
  ChaosPipelineTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 48;
    config.catalog.num_text_models = 24;
    config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
    pipeline_ = std::make_unique<Pipeline>(zoo_.get(), zoo::Modality::kImage);
  }

  ~ChaosPipelineTest() override {
    fault::ClearFaults();
    SetThreadCount(0);  // restore the default policy for later tests
  }

  // Cheap sweep config: metadata features need no graph or embeddings, so
  // the 8-target sweep stays fast enough to repeat under chaos schedules.
  static PipelineConfig FastConfig() {
    PipelineConfig config;
    config.strategy = Strategy{PredictorKind::kLinearRegression,
                               GraphLearner::kNone,
                               FeatureSet::kMetadataOnly};
    return config;
  }

  static void ExpectBitIdentical(const std::vector<TargetEvaluation>& a,
                                 const std::vector<TargetEvaluation>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].target_dataset, b[i].target_dataset);
      EXPECT_EQ(a[i].target_name, b[i].target_name);
      EXPECT_EQ(a[i].model_indices, b[i].model_indices) << a[i].target_name;
      EXPECT_EQ(a[i].predicted, b[i].predicted) << a[i].target_name;
      EXPECT_EQ(a[i].actual, b[i].actual) << a[i].target_name;
      EXPECT_EQ(a[i].pearson, b[i].pearson) << a[i].target_name;
      EXPECT_EQ(a[i].spearman, b[i].spearman) << a[i].target_name;
    }
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(ChaosPipelineTest, ResumableWithDefaultsMatchesEvaluateAllTargets) {
  const PipelineConfig config = FastConfig();
  const std::vector<TargetEvaluation> plain =
      pipeline_->EvaluateAllTargets(config);
  const SweepResult resumable =
      pipeline_->EvaluateAllTargetsResumable(config, SweepOptions{});
  EXPECT_TRUE(resumable.complete);
  EXPECT_EQ(resumable.resumed, 0u);
  EXPECT_EQ(resumable.retried, 0u);
  ExpectBitIdentical(plain, resumable.evaluations);
}

TEST_F(ChaosPipelineTest, CheckpointRoundTripsEvaluations) {
  const PipelineConfig config = FastConfig();
  SweepResult reference =
      pipeline_->EvaluateAllTargetsResumable(config, SweepOptions{});
  SweepCheckpoint checkpoint;
  checkpoint.build_git_sha = "test-sha";
  checkpoint.fingerprint =
      SweepFingerprint(config, zoo::Modality::kImage);
  checkpoint.targets = reference.evaluations;
  const std::string path = TempPath("checkpoint_roundtrip.json");
  ASSERT_TRUE(SaveSweepCheckpoint(path, checkpoint).ok());
  Result<SweepCheckpoint> loaded = LoadSweepCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().build_git_sha, "test-sha");
  EXPECT_EQ(loaded.value().fingerprint, checkpoint.fingerprint);
  ExpectBitIdentical(reference.evaluations, loaded.value().targets);

  EXPECT_FALSE(LoadSweepCheckpoint(TempPath("missing.json")).ok());
  ASSERT_TRUE(WriteFileAtomic(path, "{\"schema\":999}").ok());
  EXPECT_FALSE(LoadSweepCheckpoint(path).ok());
  ASSERT_TRUE(WriteFileAtomic(path, "{torn").ok());
  EXPECT_FALSE(LoadSweepCheckpoint(path).ok());
}

TEST_F(ChaosPipelineTest, ResumeIsBitIdenticalAcrossThreadCounts) {
  const PipelineConfig config = FastConfig();
  const std::vector<TargetEvaluation> reference =
      pipeline_->EvaluateAllTargets(config);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetThreadCount(threads);
    const std::string path = TempPath(
        "checkpoint_resume_" + std::to_string(threads) + ".json");
    std::remove(path.c_str());

    // Interrupted first pass: after 3 completed targets, every further
    // attempt dies before evaluation; degradation is off, so the failed
    // targets stay un-checkpointed.
    SweepOptions options;
    options.checkpoint_path = path;
    options.degrade_on_failure = false;
    ASSERT_TRUE(fault::InstallSpec("pipeline.target=after:3").ok());
    const SweepResult interrupted =
        pipeline_->EvaluateAllTargetsResumable(config, options);
    fault::ClearFaults();
    EXPECT_FALSE(interrupted.complete);
    EXPECT_GT(interrupted.failed, 0u);
    ASSERT_TRUE(FileExists(path)) << "completed targets must be checkpointed";

    // Second pass: resumes the completed targets, computes the rest.
    const SweepResult resumed =
        pipeline_->EvaluateAllTargetsResumable(config, options);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.resumed, 3u);
    ExpectBitIdentical(reference, resumed.evaluations);
  }
}

TEST_F(ChaosPipelineTest, StaleCheckpointIsIgnoredOnConfigChange) {
  PipelineConfig config = FastConfig();
  const std::string path = TempPath("checkpoint_stale.json");
  std::remove(path.c_str());
  SweepOptions options;
  options.checkpoint_path = path;
  const SweepResult first =
      pipeline_->EvaluateAllTargetsResumable(config, options);
  EXPECT_TRUE(first.complete);
  ASSERT_TRUE(FileExists(path));

  config.seed += 1;  // different sweep: the old checkpoint must not splice in
  const SweepResult second =
      pipeline_->EvaluateAllTargetsResumable(config, options);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.resumed, 0u);
}

TEST_F(ChaosPipelineTest, DegradedRetryKeepsSweepComplete) {
  const PipelineConfig config = FastConfig();
  // Every first attempt at each target fails; the metadata-only retry (the
  // same strategy here, but a fresh attempt after the once-latched fault
  // cleared) must rescue the sweep.
  ASSERT_TRUE(fault::InstallSpec("pipeline.target=hit:1").ok());
  const SweepResult result =
      pipeline_->EvaluateAllTargetsResumable(config, SweepOptions{});
  fault::ClearFaults();
  EXPECT_TRUE(result.complete) << "degraded retry should rescue the target";
  EXPECT_EQ(result.retried, 1u);
  EXPECT_EQ(result.degraded, 1u);
  size_t degraded_count = 0;
  for (const TargetEvaluation& eval : result.evaluations) {
    EXPECT_FALSE(eval.failed);
    if (eval.degraded) {
      ++degraded_count;
      EXPECT_EQ(eval.retries, 1);
    }
  }
  EXPECT_EQ(degraded_count, 1u);
}

TEST_F(ChaosPipelineTest, RandomizedChaosSchedulesNeverCrashOrTear) {
  const PipelineConfig config = FastConfig();
  const std::vector<TargetEvaluation> reference =
      pipeline_->EvaluateAllTargets(config);
  const std::string path = TempPath("checkpoint_chaos.json");

  // Deterministic "randomized" schedules: seeded probability rules across
  // every fault site the sweep traverses. alloc is excluded -- an injected
  // bad_alloc surfacing in a destructor would terminate by design.
  const char* schedules[] = {
      "pipeline.target=prob:0.4:seed:1;checkpoint.write=prob:0.3:seed:2",
      "thread_pool.dispatch=prob:0.05:seed:3",
      "atomic_file.write=prob:0.5:seed:4;pipeline.target=prob:0.2:seed:5",
      "checkpoint.read=always;pipeline.target=prob:0.5:seed:6",
      "atomic_file.crash_before_rename=prob:0.5:seed:7",
      "thread_pool.dispatch=prob:0.02:seed:8;"
      "checkpoint.write=prob:0.5:seed:9;pipeline.target=prob:0.3:seed:10",
  };
  for (const char* schedule : schedules) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    SweepOptions options;
    options.checkpoint_path = path;
    ASSERT_TRUE(fault::InstallSpec(schedule).ok()) << schedule;
    const SweepResult chaotic =
        pipeline_->EvaluateAllTargetsResumable(config, options);
    fault::ClearFaults();

    // No crash (we got here), every slot accounted for, and any evaluation
    // that did complete is bit-identical to the reference run.
    ASSERT_EQ(chaotic.evaluations.size(), reference.size()) << schedule;
    for (size_t i = 0; i < chaotic.evaluations.size(); ++i) {
      const TargetEvaluation& eval = chaotic.evaluations[i];
      if (eval.failed) continue;
      EXPECT_EQ(eval.predicted, reference[i].predicted)
          << schedule << " corrupted " << eval.target_name;
    }

    // The checkpoint is either absent or loadable -- never torn. (A
    // crash_before_rename fault leaves a .tmp, which must never shadow the
    // real file.)
    if (FileExists(path)) {
      Result<SweepCheckpoint> loaded = LoadSweepCheckpoint(path);
      EXPECT_TRUE(loaded.ok())
          << schedule << " tore the checkpoint: "
          << loaded.status().ToString();
    }
  }

  // Fault-free rerun from scratch: bit-identical to the reference.
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  const SweepResult clean =
      pipeline_->EvaluateAllTargetsResumable(config, SweepOptions{});
  EXPECT_TRUE(clean.complete);
  ExpectBitIdentical(reference, clean.evaluations);
}

}  // namespace
}  // namespace tg::core
