#include <cmath>

#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "ml/linear_regression.h"
#include "ml/model_selection.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

TabularDataset LinearData(size_t n, uint64_t seed) {
  Rng rng(seed);
  TabularDataset data;
  data.x = Matrix::Gaussian(n, 3, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = 2.0 * data.x(i, 0) - data.x(i, 2) +
                0.1 * rng.NextGaussian();
  }
  return data;
}

TabularDataset SteppyData(size_t n, uint64_t seed) {
  Rng rng(seed);
  TabularDataset data;
  data.x = Matrix::Gaussian(n, 3, &rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Sharp nonlinear interaction: trees win, lines lose.
    data.y[i] = ((data.x(i, 0) > 0) != (data.x(i, 1) > 0) ? 1.0 : -1.0) +
                0.05 * rng.NextGaussian();
  }
  return data;
}

RegressorFactory LrFactory() {
  return [] { return std::make_unique<LinearRegression>(); };
}

RegressorFactory GbdtFactory() {
  return [] {
    GbdtConfig config;
    config.num_trees = 120;
    return std::make_unique<Gbdt>(config);
  };
}

TEST(KFoldTest, FoldCountAndFiniteErrors) {
  TabularDataset data = LinearData(200, 1);
  Result<CrossValidationResult> cv =
      KFoldCrossValidate(LrFactory(), data, 5);
  ASSERT_TRUE(cv.ok());
  EXPECT_EQ(cv.value().fold_rmse.size(), 5u);
  for (double rmse : cv.value().fold_rmse) {
    EXPECT_TRUE(std::isfinite(rmse));
    EXPECT_GE(rmse, 0.0);
  }
}

TEST(KFoldTest, LinearModelNailsLinearData) {
  TabularDataset data = LinearData(300, 2);
  Result<CrossValidationResult> cv =
      KFoldCrossValidate(LrFactory(), data, 4);
  ASSERT_TRUE(cv.ok());
  EXPECT_LT(cv.value().mean_rmse, 0.15);
}

TEST(KFoldTest, RejectsBadFoldCounts) {
  TabularDataset data = LinearData(20, 3);
  EXPECT_FALSE(KFoldCrossValidate(LrFactory(), data, 1).ok());
  EXPECT_FALSE(KFoldCrossValidate(LrFactory(), data, 21).ok());
  TabularDataset empty;
  EXPECT_FALSE(KFoldCrossValidate(LrFactory(), empty, 2).ok());
}

TEST(KFoldTest, DeterministicForSeed) {
  TabularDataset data = LinearData(150, 4);
  auto a = KFoldCrossValidate(LrFactory(), data, 3, 7);
  auto b = KFoldCrossValidate(LrFactory(), data, 3, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().mean_rmse, b.value().mean_rmse);
}

TEST(RankPredictorsTest, LinearWinsOnLinearData) {
  TabularDataset data = LinearData(300, 5);
  auto ranked = RankPredictors(
      {{"LR", LrFactory()}, {"XGB", GbdtFactory()}}, data, 4);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked.value().size(), 2u);
  EXPECT_EQ(ranked.value()[0].name, "LR");
}

TEST(RankPredictorsTest, TreesWinOnInteractionData) {
  TabularDataset data = SteppyData(400, 6);
  auto ranked = RankPredictors(
      {{"LR", LrFactory()}, {"XGB", GbdtFactory()}}, data, 4);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked.value()[0].name, "XGB");
}

TEST(RankPredictorsTest, RejectsEmptyCandidates) {
  TabularDataset data = LinearData(50, 7);
  EXPECT_FALSE(RankPredictors({}, data, 3).ok());
}

}  // namespace
}  // namespace tg::ml
