// Tests for the sampling CPU profiler (obs/profiler.h) and the hardware
// counter substrate (obs/perf_counters.h): span attribution under
// ParallelFor, collapsed-stack format, the bit-identity determinism
// contract, counter-scope RAII nesting, clean degradation when
// perf_event_open fails (forced via the "perf_open" fault site, since CI
// containers legitimately lack a PMU), and the bench_history counter-ratio
// gate including tolerance for history entries that predate the counter
// schema.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/bench_history.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/json_util.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "zoo/model_zoo.h"

namespace tg {
namespace {

// Static storage: the signal handler records this pointer, so it must
// outlive any in-flight sample.
constexpr char kBusySpan[] = "profiler_test_busy";

// Burns CPU inside a span on the pool; the volatile sink keeps the loop
// from being optimized away.
void BusyRound() {
  ParallelFor(0, 8, 1, [](size_t, size_t, size_t) {
    obs::Span span(kBusySpan);
    volatile double sink = 0.0;
    for (size_t i = 0; i < 400000; ++i) {
      sink = sink + static_cast<double>(i % 1024) * 1e-9;
    }
  });
}

// Runs busy rounds until at least one sample has attributed to kBusySpan.
// Sanitizers defer async signals to safe points and CI machines stall, so
// this loops against a generous wall-clock deadline rather than assuming
// one round is enough; the profiler samples process *CPU* time, so more
// rounds always means more expected samples.
uint64_t SampleBusySpan(double deadline_seconds = 60.0) {
  obs::WallTimer timer;
  while (timer.ElapsedSeconds() < deadline_seconds) {
    BusyRound();
    const std::map<std::string, uint64_t> counts =
        obs::SpanProfileSampleCounts();
    const auto it = counts.find(kBusySpan);
    if (it != counts.end() && it->second > 0) return it->second;
  }
  return 0;
}

obs::PerfCounterValues MakeCounterDelta(uint64_t cycles, uint64_t instructions,
                                        uint64_t cache_references,
                                        uint64_t cache_misses) {
  obs::PerfCounterValues v;
  v.cycles = cycles;
  v.instructions = instructions;
  v.cache_references = cache_references;
  v.cache_misses = cache_misses;
  v.branch_misses = cache_misses / 2;
  v.ok = true;
  return v;
}

obs::StagePerfTotals MakeStageTotals(uint64_t cycles, uint64_t instructions,
                                     uint64_t cache_references,
                                     uint64_t cache_misses) {
  obs::StagePerfTotals t;
  t.cycles = cycles;
  t.instructions = instructions;
  t.cache_references = cache_references;
  t.cache_misses = cache_misses;
  t.branch_misses = cache_misses / 2;
  t.spans = 1;
  return t;
}

obs::BenchRun MakeRun(const std::string& sha, double graph_seconds,
                      double gbdt_seconds) {
  obs::BenchRun run;
  run.timestamp = "2026-01-01T00:00:00Z";
  run.git_sha = sha;
  run.compiler = "GNU 12.2.0";
  run.build_type = "Release";
  run.sanitizer = "none";
  run.tg_threads = 4;
  run.peak_rss_bytes = 1u << 30;
  run.stage_seconds["graph_build@4"] = graph_seconds;
  run.stage_seconds["gbdt_fit@4"] = gbdt_seconds;
  return run;
}

// Restores the default quiet state so test ordering does not matter.
class ObsProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { Quiet(); }
  void TearDown() override { Quiet(); }

  static void Quiet() {
    (void)obs::StopProfiler();
    obs::ResetProfile();
    obs::SetPerfCountersEnabled(false);
    obs::ResetStagePerf();
    obs::SetTraceEnabled(false);
    obs::SetMetricsEnabled(false);
    obs::ResetSpans();
    fault::ClearFaults();
    SetThreadCount(0);
  }
};

TEST_F(ObsProfilerTest, LifecycleAndArgumentValidation) {
  EXPECT_GT(obs::ProfilerDefaultHz(), 0);
  EXPECT_FALSE(obs::ProfilerRunning());

  EXPECT_FALSE(obs::StartProfiler(-5).ok());
  EXPECT_FALSE(obs::StartProfiler(1000000).ok());
  EXPECT_FALSE(obs::ProfilerRunning());

  ASSERT_TRUE(obs::StartProfiler(97).ok());
  EXPECT_TRUE(obs::ProfilerRunning());
  EXPECT_EQ(obs::ProfilerHz(), 97);
  EXPECT_FALSE(obs::StartProfiler(97).ok()) << "double start must fail";

  ASSERT_TRUE(obs::StopProfiler().ok());
  EXPECT_FALSE(obs::ProfilerRunning());
  ASSERT_TRUE(obs::StopProfiler().ok()) << "stop must be idempotent";
}

TEST_F(ObsProfilerTest, SamplesAttributeToSpansUnderParallelFor) {
  SetThreadCount(4);
  ASSERT_TRUE(obs::StartProfiler(997).ok());
  const uint64_t busy_samples = SampleBusySpan();
  ASSERT_TRUE(obs::StopProfiler().ok());

  ASSERT_GT(busy_samples, 0u)
      << "no sample attributed to " << kBusySpan << " before the deadline";
  EXPECT_GT(obs::ProfilerSampleCount(), 0u);

  // The busy span roots its collapsed stacks, so the dump must mention it.
  const std::string collapsed = obs::CollapsedStacks();
  EXPECT_NE(collapsed.find(kBusySpan), std::string::npos);

  // The report table renders (hot symbols may be hex fallbacks, but the
  // table itself must exist once there are samples).
  EXPECT_FALSE(obs::ProfileReportTable(5).empty());

  const std::string summary = obs::ProfileSummaryJson();
  EXPECT_TRUE(JsonValidate(summary).ok()) << summary;
  EXPECT_NE(summary.find("\"hz\":997"), std::string::npos) << summary;
}

TEST_F(ObsProfilerTest, CollapsedStackLinesParse) {
  SetThreadCount(2);
  ASSERT_TRUE(obs::StartProfiler(997).ok());
  ASSERT_GT(SampleBusySpan(), 0u);
  ASSERT_TRUE(obs::StopProfiler().ok());

  const std::string collapsed = obs::CollapsedStacks();
  ASSERT_FALSE(collapsed.empty());
  ASSERT_EQ(collapsed.back(), '\n');
  size_t lines = 0;
  for (const std::string& line : Split(collapsed, '\n')) {
    if (line.empty()) continue;
    ++lines;
    // Format: "frame;frame;...;leaf count" -- a space-separated positive
    // count after a non-empty ';'-joined stack.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string count_text = line.substr(space + 1);
    uint64_t count = 0;
    ASSERT_TRUE(ParseUint64(count_text, &count)) << line;
    EXPECT_GT(count, 0u) << line;
    for (const std::string& frame : Split(line.substr(0, space), ';')) {
      EXPECT_FALSE(frame.empty()) << line;
    }
  }
  EXPECT_GT(lines, 0u);

  // WriteCollapsedStacks persists exactly the in-memory dump.
  const std::string path =
      ::testing::TempDir() + "/profiler_test.collapsed";
  ASSERT_TRUE(obs::WriteCollapsedStacks(path).ok());
  Result<std::string> written = ReadFileToString(path);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), collapsed);
  std::remove(path.c_str());
}

TEST_F(ObsProfilerTest, ResetProfileClearsAggregates) {
  SetThreadCount(2);
  ASSERT_TRUE(obs::StartProfiler(997).ok());
  ASSERT_GT(SampleBusySpan(), 0u);
  ASSERT_TRUE(obs::StopProfiler().ok());
  ASSERT_GT(obs::ProfilerSampleCount(), 0u);

  obs::ResetProfile();
  EXPECT_EQ(obs::ProfilerSampleCount(), 0u);
  EXPECT_EQ(obs::ProfilerDroppedSampleCount(), 0u);
  EXPECT_TRUE(obs::CollapsedStacks().empty());
  EXPECT_TRUE(obs::SpanProfileSampleCounts().empty());
  EXPECT_TRUE(obs::ProfilerCounterEventsJson().empty());
}

// The determinism contract from the issue: pipeline outputs are
// bit-identical with the profiler sampling and counters enabled.
TEST_F(ObsProfilerTest, PipelineOutputsIdenticalWithProfilingOnOrOff) {
  zoo::ModelZooConfig zoo_config;
  zoo_config.catalog.num_image_models = 32;
  zoo_config.catalog.num_text_models = 16;
  zoo_config.world.max_samples_per_dataset = 60;
  zoo::ModelZoo zoo(zoo_config);

  core::PipelineConfig config;
  config.strategy = {core::PredictorKind::kLinearRegression,
                     core::GraphLearner::kNode2Vec, core::FeatureSet::kAll};
  config.node2vec.walk.walks_per_node = 4;
  config.node2vec.walk.walk_length = 12;
  config.node2vec.skipgram.dim = 16;
  config.node2vec.skipgram.epochs = 2;

  core::Pipeline quiet_pipeline(&zoo, zoo::Modality::kImage);
  const std::vector<core::TargetEvaluation> quiet =
      quiet_pipeline.EvaluateAllTargets(config);

  obs::SetPerfCountersEnabled(true);
  ASSERT_TRUE(obs::StartProfiler(499).ok());
  core::Pipeline profiled_pipeline(&zoo, zoo::Modality::kImage);
  const std::vector<core::TargetEvaluation> profiled =
      profiled_pipeline.EvaluateAllTargets(config);
  ASSERT_TRUE(obs::StopProfiler().ok());

  ASSERT_EQ(profiled.size(), quiet.size());
  for (size_t t = 0; t < quiet.size(); ++t) {
    ASSERT_EQ(profiled[t].predicted.size(), quiet[t].predicted.size());
    for (size_t i = 0; i < quiet[t].predicted.size(); ++i) {
      EXPECT_EQ(profiled[t].predicted[i], quiet[t].predicted[i])
          << "target " << t << " model " << i;
    }
    EXPECT_EQ(profiled[t].pearson, quiet[t].pearson) << "target " << t;
  }
}

TEST_F(ObsProfilerTest, DisabledCountersReadAsNotOk) {
  EXPECT_FALSE(obs::PerfCountersEnabled());
  EXPECT_FALSE(obs::ThreadPerfCounters().ok);
  EXPECT_STREQ(obs::PerfCountersStatusString(), "disabled");
  const std::string json = obs::PerfCountersStatusJson();
  EXPECT_TRUE(JsonValidate(json).ok()) << json;
  EXPECT_NE(json.find("disabled"), std::string::npos) << json;
}

// Works in both worlds: on PMU-less CI the substrate must degrade, on real
// hardware the scopes must nest with inner counts included in the outer
// delta (inclusive semantics, like wall time).
TEST_F(ObsProfilerTest, CounterScopesNestOrDegradeGracefully) {
  obs::SetPerfCountersEnabled(true);
  const bool available = obs::PerfCountersAvailable();
  EXPECT_STREQ(obs::PerfCountersStatusString(),
               available ? "ok" : "unavailable");
  EXPECT_TRUE(JsonValidate(obs::PerfCountersStatusJson()).ok());

  obs::PerfCounterValues outer_delta;
  obs::PerfCounterValues inner_delta;
  {
    obs::PerfCounterScope outer("profiler_test_outer");
    {
      obs::PerfCounterScope inner("profiler_test_inner");
      volatile double sink = 0.0;
      for (int i = 0; i < 200000; ++i) sink = sink + static_cast<double>(i);
      inner_delta = inner.Delta();
    }
    outer_delta = outer.Delta();
  }

  const auto stages = obs::StagePerfSnapshot();
  if (available) {
    EXPECT_TRUE(inner_delta.ok);
    EXPECT_TRUE(outer_delta.ok);
    EXPECT_GE(outer_delta.cycles, inner_delta.cycles)
        << "outer scope must include the nested scope's counts";
    ASSERT_EQ(stages.count("profiler_test_outer"), 1u);
    ASSERT_EQ(stages.count("profiler_test_inner"), 1u);
    EXPECT_GT(stages.at("profiler_test_inner").cycles, 0u);
    EXPECT_EQ(stages.at("profiler_test_inner").spans, 1u);
  } else {
    EXPECT_FALSE(inner_delta.ok);
    EXPECT_FALSE(outer_delta.ok);
    EXPECT_FALSE(obs::PerfCountersUnavailableReason().empty());
    // Degraded deltas must not pollute the aggregates.
    EXPECT_EQ(stages.count("profiler_test_outer"), 0u);
    EXPECT_EQ(stages.count("profiler_test_inner"), 0u);
  }
}

// Satellite: TG_FAULT=perf_open=always forces the no-PMU path even on
// hardware that has counters. The injected failure must surface as a clean
// ok=false reading on a thread whose group was not yet open -- never a
// crash or a silently-zero "ok" reading.
TEST_F(ObsProfilerTest, PerfOpenFaultInjectionDegradesCleanly) {
  ASSERT_TRUE(fault::InstallSpec("perf_open=always").ok());
  obs::SetPerfCountersEnabled(true);

  // A fresh thread has no open counter group, so its first read must hit
  // the fault site regardless of what earlier tests latched process-wide.
  obs::PerfCounterValues reading;
  std::thread probe([&reading] { reading = obs::ThreadPerfCounters(); });
  probe.join();
  EXPECT_FALSE(reading.ok);
  EXPECT_EQ(reading.cycles, 0u);

  // On a PMU-less machine (and in CI containers) nothing ever opened, so
  // the process-wide state is "unavailable" with a recorded reason.
  if (!obs::PerfCountersAvailable()) {
    EXPECT_STREQ(obs::PerfCountersStatusString(), "unavailable");
    EXPECT_FALSE(obs::PerfCountersUnavailableReason().empty());
    const std::string json = obs::PerfCountersStatusJson();
    EXPECT_TRUE(JsonValidate(json).ok()) << json;
    EXPECT_NE(json.find("unavailable"), std::string::npos) << json;
  }
  fault::ClearFaults();
}

TEST_F(ObsProfilerTest, StageAggregatesFeedJsonTableAndGauges) {
  obs::AccumulateStageCounters("profiler_test_stage",
                               MakeCounterDelta(1000, 2000, 100, 10));
  obs::AccumulateStageCounters("profiler_test_stage",
                               MakeCounterDelta(1000, 2000, 100, 10));

  const auto stages = obs::StagePerfSnapshot();
  ASSERT_EQ(stages.count("profiler_test_stage"), 1u);
  const obs::StagePerfTotals& totals = stages.at("profiler_test_stage");
  EXPECT_EQ(totals.cycles, 2000u);
  EXPECT_EQ(totals.instructions, 4000u);
  EXPECT_EQ(totals.spans, 2u);
  EXPECT_DOUBLE_EQ(totals.Ipc(), 2.0);
  EXPECT_DOUBLE_EQ(totals.CacheMissRate(), 0.1);

  // Gauges track the derived ratios for the metrics surface.
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::Instance()
                       .GetGauge("stage.profiler_test_stage.ipc")
                       .value(),
                   2.0);
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::Instance()
                       .GetGauge("stage.profiler_test_stage.cache_miss_rate")
                       .value(),
                   0.1);

  const std::string json = obs::StagePerfCountersJson();
  EXPECT_TRUE(JsonValidate(json).ok()) << json;
  EXPECT_NE(json.find("profiler_test_stage"), std::string::npos) << json;
  EXPECT_FALSE(obs::StagePerfTable().empty());

  // ok=false deltas are dropped, not zero-added.
  obs::PerfCounterValues degraded;  // ok defaults to false
  degraded.cycles = 999;
  obs::AccumulateStageCounters("profiler_test_degraded", degraded);
  EXPECT_EQ(obs::StagePerfSnapshot().count("profiler_test_degraded"), 0u);

  obs::ResetStagePerf();
  EXPECT_TRUE(obs::StagePerfSnapshot().empty());
  EXPECT_EQ(obs::StagePerfCountersJson(), "[]");
}

TEST_F(ObsProfilerTest, HistoryRoundTripsCounterTotals) {
  obs::BenchRun with_counters = MakeRun("abc1234", 2.0, 4.0);
  with_counters.stage_counters["graph_build"] =
      MakeStageTotals(200000000, 400000000, 5000000, 250000);
  obs::BenchRun without_counters = MakeRun("def5678", 2.1, 4.1);

  const std::string json =
      obs::HistoryToJson({with_counters, without_counters});
  ASSERT_TRUE(JsonValidate(json).ok()) << json;

  Result<std::vector<obs::BenchRun>> parsed = obs::ParseHistoryJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  const auto& restored = parsed.value()[0].stage_counters;
  ASSERT_EQ(restored.count("graph_build"), 1u);
  EXPECT_EQ(restored.at("graph_build").cycles, 200000000u);
  EXPECT_EQ(restored.at("graph_build").instructions, 400000000u);
  EXPECT_EQ(restored.at("graph_build").cache_misses, 250000u);
  // Runs without counters stay counter-less after the round trip, and
  // serialize without a "counters" key at all (schema-1 byte compat).
  EXPECT_TRUE(parsed.value()[1].stage_counters.empty());
  EXPECT_EQ(obs::HistoryToJson({without_counters}).find("counters"),
            std::string::npos);
}

// Satellite: `bench_history compare` must tolerate history entries written
// before the counter schema existed -- counter gates skip with a note, the
// wall-time gates still run, and nothing errors.
TEST_F(ObsProfilerTest, CompareToleratesRunsWithoutCounterFields) {
  const obs::BenchRun baseline = MakeRun("abc1234", 2.0, 4.0);  // no counters
  obs::BenchRun latest = MakeRun("def5678", 2.05, 4.05);
  latest.stage_counters["graph_build"] =
      MakeStageTotals(200000000, 400000000, 5000000, 250000);

  obs::CompareOptions options;
  options.min_ipc_ratio = 0.8;
  options.max_cache_miss_ratio = 1.5;
  const obs::CompareReport report =
      obs::CompareBenchRuns(baseline, latest, options);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.counters.empty());
  bool noted = false;
  for (const std::string& note : report.notes) {
    if (note.find("counter gates skipped") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << report.Render();

  // An old-schema history document (no "counters" anywhere) still parses.
  const std::string old_schema =
      "{\"schema\": 1, \"runs\": [{\"timestamp\": \"2026-01-01T00:00:00Z\","
      " \"build_info\": {\"git_sha\": \"abc\", \"compiler\": \"GNU\","
      " \"flags\": \"\", \"build_type\": \"Release\","
      " \"sanitizer\": \"none\", \"cxx_standard\": 202002,"
      " \"tg_threads\": 4}, \"peak_rss_bytes\": 1024, \"timings\":"
      " [{\"component\": \"graph_build\", \"threads\": 4,"
      " \"wall_seconds\": 2.0}]}]}";
  Result<std::vector<obs::BenchRun>> parsed =
      obs::ParseHistoryJson(old_schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_TRUE(parsed.value()[0].stage_counters.empty());
  EXPECT_EQ(parsed.value()[0].stage_seconds.count("graph_build@4"), 1u);
}

TEST_F(ObsProfilerTest, CompareFlagsIpcAndCacheMissRegressions) {
  obs::BenchRun baseline = MakeRun("abc1234", 2.0, 4.0);
  baseline.stage_counters["graph_build"] =
      MakeStageTotals(200000000, 400000000, 10000000, 500000);  // IPC 2.0
  obs::BenchRun latest = MakeRun("def5678", 2.0, 4.0);
  latest.stage_counters["graph_build"] =
      MakeStageTotals(200000000, 200000000, 10000000, 500000);  // IPC 1.0

  obs::CompareOptions options;
  options.min_ipc_ratio = 0.8;  // 1.0/2.0 = 0.5 < 0.8 -> regression
  obs::CompareReport report = obs::CompareBenchRuns(baseline, latest, options);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.counters.size(), 1u);
  EXPECT_TRUE(report.counters[0].regressed);
  EXPECT_DOUBLE_EQ(report.counters[0].ipc_ratio, 0.5);
  EXPECT_NE(report.Render().find("graph_build"), std::string::npos);

  // Same counts pass a looser threshold.
  options.min_ipc_ratio = 0.4;
  report = obs::CompareBenchRuns(baseline, latest, options);
  EXPECT_TRUE(report.ok) << report.Render();

  // Cache-miss-rate gate: 3x the baseline miss rate against a 1.5x cap.
  obs::BenchRun thrashing = MakeRun("0123abc", 2.0, 4.0);
  thrashing.stage_counters["graph_build"] =
      MakeStageTotals(200000000, 400000000, 10000000, 1500000);
  options = obs::CompareOptions{};
  options.max_cache_miss_ratio = 1.5;
  report = obs::CompareBenchRuns(baseline, thrashing, options);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.counters.size(), 1u);
  EXPECT_TRUE(report.counters[0].regressed);
  EXPECT_DOUBLE_EQ(report.counters[0].miss_ratio, 3.0);

  // Stages under the cycle noise floor are skipped, not judged.
  obs::BenchRun tiny_baseline = MakeRun("abc1234", 2.0, 4.0);
  tiny_baseline.stage_counters["graph_build"] =
      MakeStageTotals(1000, 2000, 100, 10);
  obs::BenchRun tiny_latest = MakeRun("def5678", 2.0, 4.0);
  tiny_latest.stage_counters["graph_build"] =
      MakeStageTotals(1000, 500, 100, 99);
  options = obs::CompareOptions{};
  options.min_ipc_ratio = 0.8;
  options.max_cache_miss_ratio = 1.5;
  report = obs::CompareBenchRuns(tiny_baseline, tiny_latest, options);
  EXPECT_TRUE(report.ok) << report.Render();
  ASSERT_EQ(report.counters.size(), 1u);
  EXPECT_TRUE(report.counters[0].skipped_below_floor);
  EXPECT_FALSE(report.counters[0].regressed);
}

// The counter gates must not engage (or note anything) when the caller
// never asked for them: default options against counter-less runs.
TEST_F(ObsProfilerTest, CounterGatesSilentWhenNotRequested) {
  const obs::BenchRun baseline = MakeRun("abc1234", 2.0, 4.0);
  const obs::BenchRun latest = MakeRun("def5678", 2.05, 4.05);
  const obs::CompareReport report = obs::CompareBenchRuns(baseline, latest);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.counters.empty());
  for (const std::string& note : report.notes) {
    EXPECT_EQ(note.find("counter"), std::string::npos) << note;
  }
}

TEST_F(ObsProfilerTest, ChromeTraceCarriesProfilerSamples) {
  obs::SetTraceEnabled(true);
  SetThreadCount(2);
  ASSERT_TRUE(obs::StartProfiler(997).ok());
  ASSERT_GT(SampleBusySpan(), 0u);
  ASSERT_TRUE(obs::StopProfiler().ok());

  const std::string trace = obs::ChromeTraceJson();
  ASSERT_TRUE(JsonValidate(trace).ok());
  // The cumulative sample-count counter track rides along...
  EXPECT_NE(trace.find("profiler_samples"), std::string::npos);
  // ...and sampled spans carry their per-span sample count as an arg.
  EXPECT_NE(trace.find("profile_samples"), std::string::npos);
  EXPECT_NE(trace.find(kBusySpan), std::string::npos);
}

}  // namespace
}  // namespace tg
