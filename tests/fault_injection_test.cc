// Tests for the fault-injection substrate, the atomic file writer, the
// hardened serialization loader, and the TG_CHECK failure hook.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/serialization.h"
#include "obs/trace.h"
#include "util/atomic_file.h"
#include "util/csv.h"
#include "util/fault.h"

namespace tg {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string Slurp(const std::string& path) {
  Result<std::string> contents = ReadFileToString(path);
  return contents.ok() ? contents.value() : std::string();
}

// Every test leaves the substrate disarmed for its neighbours.
class FaultTest : public ::testing::Test {
 protected:
  ~FaultTest() override { fault::ClearFaults(); }
};

// --- Spec parsing -----------------------------------------------------------

TEST_F(FaultTest, ParsesEveryModeAndModifier) {
  Result<std::vector<fault::SiteRule>> rules = fault::ParseSpec(
      "a=always; b=once; c=hit:3; d=after:2:once; "
      "e=prob:0.25:seed:9:min:1024");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules.value().size(), 5u);
  EXPECT_EQ(rules.value()[0].mode, fault::SiteRule::Mode::kAlways);
  EXPECT_FALSE(rules.value()[0].once);
  EXPECT_TRUE(rules.value()[1].once);
  EXPECT_EQ(rules.value()[2].mode, fault::SiteRule::Mode::kHit);
  EXPECT_EQ(rules.value()[2].n, 3u);
  EXPECT_EQ(rules.value()[3].mode, fault::SiteRule::Mode::kAfter);
  EXPECT_TRUE(rules.value()[3].once);
  EXPECT_EQ(rules.value()[4].mode, fault::SiteRule::Mode::kProb);
  EXPECT_DOUBLE_EQ(rules.value()[4].probability, 0.25);
  EXPECT_EQ(rules.value()[4].seed, 9u);
  EXPECT_EQ(rules.value()[4].min_weight, 1024u);
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "noequals",        "=always",       "s=",           "s=hit",
      "s=hit:0",         "s=hit:-1",      "s=after",      "s=prob",
      "s=prob:1.5",      "s=prob:x",      "s=prob:nan",   "s=bogus",
      "s=always:bogus",  "s=always:seed", "s=once:min:x", "a=always;a=once",
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(fault::ParseSpec(spec).ok()) << "accepted: " << spec;
  }
}

TEST_F(FaultTest, EmptySpecAndWhitespaceAreFine) {
  EXPECT_TRUE(fault::ParseSpec("").ok());
  EXPECT_TRUE(fault::ParseSpec(" ; ;").ok());
  EXPECT_TRUE(fault::InstallSpec("").ok());
  EXPECT_FALSE(fault::Armed());
}

// --- Trigger semantics ------------------------------------------------------

TEST_F(FaultTest, DisarmedFastPathNeverFires) {
  EXPECT_FALSE(fault::Armed());
  EXPECT_FALSE(TG_FAULT_POINT("anything"));
  EXPECT_EQ(fault::TotalFired(), 0u);
}

TEST_F(FaultTest, HitFiresExactlyOnNthHit) {
  ASSERT_TRUE(fault::InstallSpec("site=hit:3").ok());
  EXPECT_TRUE(fault::Armed());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(TG_FAULT_POINT("site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fault::SiteHits("site"), 6u);
  EXPECT_EQ(fault::SiteFired("site"), 1u);
  EXPECT_FALSE(TG_FAULT_POINT("other.site"));
}

TEST_F(FaultTest, AfterFiresOnEveryLaterHitAndOnceLatches) {
  ASSERT_TRUE(fault::InstallSpec("a=after:2;b=after:2:once").ok());
  std::vector<bool> a, b;
  for (int i = 0; i < 5; ++i) {
    a.push_back(TG_FAULT_POINT("a"));
    b.push_back(TG_FAULT_POINT("b"));
  }
  EXPECT_EQ(a, (std::vector<bool>{false, false, true, true, true}));
  EXPECT_EQ(b, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(fault::SiteFired("b"), 1u);
}

TEST_F(FaultTest, ProbIsDeterministicInHitIndex) {
  auto run = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(TG_FAULT_POINT("p"));
    }
    return fired;
  };
  ASSERT_TRUE(fault::InstallSpec("p=prob:0.3:seed:42").ok());
  const std::vector<bool> first = run();
  ASSERT_TRUE(fault::InstallSpec("p=prob:0.3:seed:42").ok());
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  size_t count = 0;
  for (bool f : first) count += f ? 1 : 0;
  EXPECT_GT(count, 30u);  // ~60 expected
  EXPECT_LT(count, 100u);
  ASSERT_TRUE(fault::InstallSpec("p=prob:0.3:seed:43").ok());
  EXPECT_NE(run(), first) << "seed should change the schedule";
}

TEST_F(FaultTest, MinWeightFiltersEligibility) {
  ASSERT_TRUE(fault::InstallSpec("w=always:min:100").ok());
  EXPECT_FALSE(TG_FAULT_POINT_W("w", 99));
  EXPECT_FALSE(TG_FAULT_POINT("w"));  // no weight = never eligible
  EXPECT_EQ(fault::SiteHits("w"), 0u) << "ineligible hits are not counted";
  EXPECT_TRUE(TG_FAULT_POINT_W("w", 100));
  EXPECT_EQ(fault::SiteHits("w"), 1u);
}

// --- Atomic file writer -----------------------------------------------------

TEST_F(FaultTest, AtomicWriterPublishesAndCleansUp) {
  const std::string path = TempPath("atomic_ok.txt");
  std::remove(path.c_str());
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.Append("hello ");
    writer.Append("world");
    EXPECT_FALSE(FileExists(path)) << "must not be visible before Commit";
    EXPECT_TRUE(writer.Commit().ok());
  }
  EXPECT_EQ(Slurp(path), "hello world");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FaultTest, WriteFaultLeavesOldContentIntact) {
  const std::string path = TempPath("atomic_write_fault.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(fault::InstallSpec("atomic_file.write=always").ok());
  Status status = WriteFileAtomic(path, "new");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("injected fault"), std::string::npos);
  fault::ClearFaults();
  EXPECT_EQ(Slurp(path), "old");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FaultTest, RenameAndFsyncFaultsDiscardTheTemp) {
  const std::string path = TempPath("atomic_rename_fault.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  for (const char* spec :
       {"atomic_file.rename=always", "atomic_file.fsync=always",
        "atomic_file.open=always"}) {
    ASSERT_TRUE(fault::InstallSpec(spec).ok());
    EXPECT_FALSE(WriteFileAtomic(path, "new").ok()) << spec;
    fault::ClearFaults();
    EXPECT_EQ(Slurp(path), "old") << spec;
    EXPECT_FALSE(FileExists(path + ".tmp")) << spec;
  }
}

TEST_F(FaultTest, CrashBeforeRenameLeavesTempDebris) {
  const std::string path = TempPath("atomic_crash.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(fault::InstallSpec("atomic_file.crash_before_rename=once").ok());
  EXPECT_FALSE(WriteFileAtomic(path, "data").ok());
  fault::ClearFaults();
  EXPECT_FALSE(FileExists(path)) << "the rename never happened";
  EXPECT_TRUE(FileExists(path + ".tmp")) << "crash debris must remain";
  EXPECT_EQ(Slurp(path + ".tmp"), "data") << "temp was fully durable";
  // Recovery: a later successful write publishes and reclaims the name.
  EXPECT_TRUE(WriteFileAtomic(path, "data2").ok());
  EXPECT_EQ(Slurp(path), "data2");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// --- CsvWriter error latching -----------------------------------------------

TEST_F(FaultTest, CsvWriterLatchesWriteErrors) {
  const std::string path = TempPath("csv_fault.csv");
  std::remove(path.c_str());
  ASSERT_TRUE(fault::InstallSpec("atomic_file.write=hit:2").ok());
  CsvWriter csv(path);
  ASSERT_TRUE(csv.ok());
  csv.WriteRow({"a", "b"});   // hit 1: fine
  csv.WriteRow({"c", "d"});   // hit 2: injected failure latches
  EXPECT_FALSE(csv.ok());
  csv.WriteRow({"e", "f"});   // dropped silently, no crash
  Status closed = csv.Close();
  EXPECT_FALSE(closed.ok());
  EXPECT_NE(closed.message().find("injected fault"), std::string::npos);
  fault::ClearFaults();
  EXPECT_FALSE(FileExists(path)) << "failed CSV must not be published";
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// --- Serialization hardening ------------------------------------------------

class SerializationCorruptionTest : public FaultTest {
 protected:
  static Graph MakeGraph() {
    Graph g;
    NodeId d0 = g.AddNode(NodeType::kDataset, "cifar100");
    NodeId d1 = g.AddNode(NodeType::kDataset, "pets");
    NodeId m0 = g.AddNode(NodeType::kModel, "resnet-50");
    g.AddUndirectedEdge(d0, d1, EdgeType::kDatasetDataset, 0.75);
    g.AddUndirectedEdge(m0, d0, EdgeType::kModelDatasetAccuracy, 0.91);
    return g;
  }

  // Writes raw bytes and expects the loader to reject them with a Status.
  void ExpectRejected(const std::string& contents, const std::string& label) {
    const std::string path = TempPath("corrupt_" + label + ".tsv");
    ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
    Result<Graph> loaded = ReadGraphFromFile(path);
    EXPECT_FALSE(loaded.ok()) << label << " should have been rejected";
  }
};

TEST_F(SerializationCorruptionTest, RejectsCorruptFixtures) {
  const std::string header = "# transfergraph v1\n";
  const std::string nodes =
      "node\t0\tdataset\tcifar100\nnode\t1\tdataset\tpets\n";
  ExpectRejected(header + nodes + "edge\t0\t1\tdd\tnan\n", "nan_weight");
  ExpectRejected(header + nodes + "edge\t0\t1\tdd\tinf\n", "inf_weight");
  ExpectRejected(header + nodes + "edge\t0\t1\tdd\t1e999\n", "huge_weight");
  ExpectRejected(header + nodes + "edge\t0\t1\tdd\tabc\n", "garbage_weight");
  ExpectRejected(header + nodes + "edge\t0\t7\tdd\t0.5\n", "out_of_range");
  ExpectRejected(header + nodes + "edge\t0\t-1\tdd\t0.5\n", "negative_id");
  ExpectRejected(header + nodes + "node\t2\tdataset\tpets\n",
                 "duplicate_name");
  ExpectRejected(header + "node\t5\tdataset\tcifar100\n", "bad_sequence");
  ExpectRejected(header + "node\tx\tdataset\tcifar100\n", "garbage_id");
  ExpectRejected(header + nodes + "blob\t0\t1\n", "unknown_record");
  ExpectRejected("# wrong header\n" + nodes, "bad_header");
  ExpectRejected(header + "node\t0\tdataset\tcifar100\nnode\t1\tdataset\tpe",
                 "truncated_final_record");
  ExpectRejected(header + "node\t0\tplasma\tcifar100\n", "bad_node_type");
  ExpectRejected(header + nodes + "edge\t0\t1\tzz\t0.5\n", "bad_edge_type");
}

TEST_F(SerializationCorruptionTest, RoundTripStillWorksAndWriterFaults) {
  Graph g = MakeGraph();
  const std::string path = TempPath("roundtrip_hardened.tsv");
  ASSERT_TRUE(WriteGraphToFile(g, path).ok());
  Result<Graph> loaded = ReadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_undirected_edges(), g.num_undirected_edges());

  const std::string before = Slurp(path);
  ASSERT_TRUE(fault::InstallSpec("serialization.write=always").ok());
  EXPECT_FALSE(WriteGraphToFile(g, path).ok());
  ASSERT_TRUE(fault::InstallSpec("serialization.read=always").ok());
  EXPECT_FALSE(ReadGraphFromFile(path).ok());
  fault::ClearFaults();
  EXPECT_EQ(Slurp(path), before) << "failed writes must not touch the file";
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// --- TG_CHECK failure hook --------------------------------------------------

TEST(CheckFailureHookDeathTest, PrintsOpenSpanStackAndAborts) {
  EXPECT_DEATH(
      {
        obs::SetMetricsEnabled(true);
        obs::Span outer("crash_outer");
        obs::Span inner("crash_inner", "detail-42");
        TG_CHECK_MSG(false, "synthetic failure");
      },
      // gtest's death matcher is POSIX ERE where '.' stops at newlines, so
      // bridge lines with (.|\n)*.
      "TG_CHECK failed.*synthetic failure(.|\n)*open span stack(.|\n)*"
      "crash_outer(.|\n)*crash_inner \\[detail-42\\]");
}

TEST(CheckFailureHookDeathTest, SpanStackEmptyWhenObsDisabled) {
  // With tracing and metrics off, spans are inert (the fast path) and the
  // crash report carries no span stack -- only the diagnostic line.
  EXPECT_DEATH(
      {
        obs::Span outer("invisible");
        TG_CHECK(false);
      },
      "TG_CHECK failed");
}

TEST(CurrentSpanStackTest, TracksNestingOrder) {
  obs::SetMetricsEnabled(true);
  {
    obs::Span outer("outer");
    obs::Span inner("inner", "d");
    const std::vector<std::string> stack = obs::CurrentSpanStack();
    ASSERT_EQ(stack.size(), 2u);
    EXPECT_EQ(stack[0], "outer");
    EXPECT_EQ(stack[1], "inner [d]");
  }
  EXPECT_TRUE(obs::CurrentSpanStack().empty());
  obs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace tg
