#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "core/recommender.h"
#include "ml/tree_engine.h"

namespace tg::core {
namespace {

// A deliberately small zoo + cheap learner settings so the end-to-end tests
// stay fast; statistical assertions are kept loose accordingly.
class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 48;
    config.catalog.num_text_models = 24;
    config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
    pipeline_ = std::make_unique<Pipeline>(zoo_.get(),
                                           zoo::Modality::kImage);
    target_ = zoo_->EvaluationTargets(zoo::Modality::kImage)[2];
  }

  PipelineConfig FastConfig(Strategy strategy) {
    PipelineConfig config;
    config.strategy = strategy;
    config.node2vec.walk.walks_per_node = 6;
    config.node2vec.walk.walk_length = 15;
    config.node2vec.skipgram.dim = 24;
    config.node2vec.skipgram.epochs = 2;
    config.sage.hidden_dim = 16;
    config.sage.output_dim = 16;
    config.gat.hidden_dim = 8;
    config.gat.output_dim = 16;
    config.gat.num_heads = 1;
    config.link_prediction.epochs = 30;
    config.predictor.gbdt.num_trees = 60;
    config.predictor.random_forest.num_trees = 30;
    return config;
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  std::unique_ptr<Pipeline> pipeline_;
  size_t target_ = 0;
};

TEST_F(PipelineTest, MetadataBaselineProducesFiniteCorrelation) {
  Strategy lr{PredictorKind::kLinearRegression, GraphLearner::kNone,
              FeatureSet::kMetadataOnly};
  TargetEvaluation eval = pipeline_->EvaluateTarget(FastConfig(lr), target_);
  EXPECT_EQ(eval.predicted.size(), 48u);
  EXPECT_EQ(eval.actual.size(), 48u);
  EXPECT_TRUE(std::isfinite(eval.pearson));
  EXPECT_GE(eval.pearson, -1.0);
  EXPECT_LE(eval.pearson, 1.0);
}

TEST_F(PipelineTest, GraphStrategyAchievesPositiveCorrelation) {
  Strategy tg{PredictorKind::kXgboost, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  TargetEvaluation eval = pipeline_->EvaluateTarget(FastConfig(tg), target_);
  EXPECT_GT(eval.pearson, 0.2);
}

TEST_F(PipelineTest, EmbeddingsCachedAcrossPredictors) {
  Strategy a{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
             FeatureSet::kAll};
  Strategy b{PredictorKind::kXgboost, GraphLearner::kNode2Vec,
             FeatureSet::kAll};
  PipelineConfig config_a = FastConfig(a);
  PipelineConfig config_b = FastConfig(b);
  config_a.graph.exclude_target = target_;
  config_b.graph.exclude_target = target_;
  BuiltGraph built =
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, config_a.graph);
  const Matrix& emb_a = pipeline_->EmbeddingsFor(config_a, built);
  const Matrix& emb_b = pipeline_->EmbeddingsFor(config_b, built);
  EXPECT_EQ(&emb_a, &emb_b);  // same cache entry
}

TEST_F(PipelineTest, DifferentTargetsGetDifferentCacheEntries) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  PipelineConfig c1 = FastConfig(tg);
  PipelineConfig c2 = FastConfig(tg);
  const auto targets = zoo_->EvaluationTargets(zoo::Modality::kImage);
  c1.graph.exclude_target = targets[0];
  c2.graph.exclude_target = targets[1];
  BuiltGraph b1 =
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, c1.graph);
  BuiltGraph b2 =
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, c2.graph);
  const Matrix& e1 = pipeline_->EmbeddingsFor(c1, b1);
  const Matrix& e2 = pipeline_->EmbeddingsFor(c2, b2);
  EXPECT_NE(&e1, &e2);
}

TEST_F(PipelineTest, GraphSageLearnerRuns) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kGraphSage,
              FeatureSet::kAll};
  TargetEvaluation eval = pipeline_->EvaluateTarget(FastConfig(tg), target_);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

TEST_F(PipelineTest, PcaReducedNodeFeaturesRun) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kGraphSage,
              FeatureSet::kAll};
  PipelineConfig config = FastConfig(tg);
  config.node_feature_pca_dim = 16;
  TargetEvaluation eval = pipeline_->EvaluateTarget(config, target_);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

TEST_F(PipelineTest, GatLearnerRuns) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kGat,
              FeatureSet::kAll};
  TargetEvaluation eval = pipeline_->EvaluateTarget(FastConfig(tg), target_);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

TEST_F(PipelineTest, TopKMeanAccuracy) {
  TargetEvaluation eval;
  eval.predicted = {0.9, 0.1, 0.5, 0.8};
  eval.actual = {0.7, 0.2, 0.4, 0.6};
  // Top-2 by prediction: indices 0 and 3 -> mean(0.7, 0.6).
  EXPECT_NEAR(eval.TopKMeanAccuracy(2), 0.65, 1e-12);
  // k larger than the pool falls back to all models.
  EXPECT_NEAR(eval.TopKMeanAccuracy(10), (0.7 + 0.2 + 0.4 + 0.6) / 4.0,
              1e-12);
}

TEST_F(PipelineTest, EvaluateAllTargetsCoversEvaluationSet) {
  Strategy lr{PredictorKind::kLinearRegression, GraphLearner::kNone,
              FeatureSet::kMetadataOnly};
  std::vector<TargetEvaluation> evals =
      pipeline_->EvaluateAllTargets(FastConfig(lr));
  EXPECT_EQ(evals.size(), 8u);
  StrategySummary summary = Summarize("LR", evals);
  EXPECT_EQ(summary.per_target_pearson.size(), 8u);
  EXPECT_TRUE(std::isfinite(summary.mean_pearson));
}

TEST_F(PipelineTest, LoraEvaluationMethodChangesActuals) {
  Strategy lr{PredictorKind::kLinearRegression, GraphLearner::kNone,
              FeatureSet::kMetadataOnly};
  PipelineConfig full = FastConfig(lr);
  PipelineConfig lora = FastConfig(lr);
  lora.evaluation_method = zoo::FineTuneMethod::kLora;
  TargetEvaluation e_full = pipeline_->EvaluateTarget(full, target_);
  TargetEvaluation e_lora = pipeline_->EvaluateTarget(lora, target_);
  bool any_different = false;
  for (size_t i = 0; i < e_full.actual.size(); ++i) {
    if (e_full.actual[i] != e_lora.actual[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
  // No leakage: the evaluation ground truth must not influence the
  // predictions themselves.
  for (size_t i = 0; i < e_full.predicted.size(); ++i) {
    EXPECT_DOUBLE_EQ(e_full.predicted[i], e_lora.predicted[i]);
  }
}

TEST_F(PipelineTest, FullyDeterministicAcrossPipelineInstances) {
  Strategy tg{PredictorKind::kXgboost, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  PipelineConfig config = FastConfig(tg);
  Pipeline second(zoo_.get(), zoo::Modality::kImage);
  TargetEvaluation a = pipeline_->EvaluateTarget(config, target_);
  TargetEvaluation b = second.EvaluateTarget(config, target_);
  ASSERT_EQ(a.predicted.size(), b.predicted.size());
  for (size_t i = 0; i < a.predicted.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.predicted[i], b.predicted[i]);
  }
  EXPECT_DOUBLE_EQ(a.pearson, b.pearson);
}

TEST_F(PipelineTest, GraphOnlyFeatureSetRuns) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
              FeatureSet::kGraphOnly};
  TargetEvaluation eval = pipeline_->EvaluateTarget(FastConfig(tg), target_);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

TEST_F(PipelineTest, HistoryRatioSubsamplesTrainingTable) {
  // With a tiny ratio the predictions must change (different training set).
  Strategy lr{PredictorKind::kLinearRegression, GraphLearner::kNone,
              FeatureSet::kMetadataOnly};
  PipelineConfig full = FastConfig(lr);
  PipelineConfig third = FastConfig(lr);
  third.graph.history_ratio = 0.3;
  TargetEvaluation a = pipeline_->EvaluateTarget(full, target_);
  TargetEvaluation b = pipeline_->EvaluateTarget(third, target_);
  bool any_different = false;
  for (size_t i = 0; i < a.predicted.size(); ++i) {
    if (a.predicted[i] != b.predicted[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST_F(PipelineTest, AutoPredictorResolvesAndRuns) {
  Strategy automatic{PredictorKind::kAuto, GraphLearner::kNone,
                     FeatureSet::kMetadataOnly};
  PipelineConfig config = FastConfig(automatic);
  config.predictor.gbdt.num_trees = 30;
  config.predictor.random_forest.num_trees = 15;
  TargetEvaluation eval = pipeline_->EvaluateTarget(config, target_);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

TEST_F(PipelineTest, NoHistoryColdStartRuns) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  PipelineConfig config = FastConfig(tg);
  config.graph.include_accuracy_edges = false;
  config.use_transferability_labels = true;
  TargetEvaluation eval = pipeline_->EvaluateTarget(config, target_);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

// The repo's headline claim as a regression test: graph features improve
// over the metadata-only baseline on average (paper Fig. 7), even with the
// reduced test-size zoo and learner settings.
TEST_F(PipelineTest, GraphFeaturesBeatMetadataBaselineOnAverage) {
  Strategy lr{PredictorKind::kLinearRegression, GraphLearner::kNone,
              FeatureSet::kMetadataOnly};
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  const auto targets = zoo_->EvaluationTargets(zoo::Modality::kImage);
  double lr_total = 0.0;
  double tg_total = 0.0;
  // Three targets keep the test fast; the margin holds on all of them in
  // the full benches.
  for (size_t i = 0; i < 3; ++i) {
    lr_total += pipeline_->EvaluateTarget(FastConfig(lr), targets[i]).pearson;
    tg_total += pipeline_->EvaluateTarget(FastConfig(tg), targets[i]).pearson;
  }
  EXPECT_GT(tg_total / 3.0, lr_total / 3.0);
}

TEST_F(PipelineTest, HistTreeEngineRankingQualityWithinToleranceOfExact) {
  // The TG_TREE=hist engine quantizes split thresholds; ranking quality on
  // the end-to-end pipeline must stay within a small tolerance of exact
  // mode, not just on synthetic tabular fixtures. Embeddings are cached per
  // (config, target), so both runs rank the same feature table and the diff
  // isolates the tree engine.
  Strategy rf{PredictorKind::kRandomForest, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  const PipelineConfig config = FastConfig(rf);
  ml::SetDefaultTreeEngine(ml::TreeEngine::kExact);
  TargetEvaluation exact = pipeline_->EvaluateTarget(config, target_);
  ml::SetDefaultTreeEngine(ml::TreeEngine::kHist);
  TargetEvaluation hist = pipeline_->EvaluateTarget(config, target_);
  ml::SetDefaultTreeEngine(ml::TreeEngine::kExact);

  EXPECT_TRUE(std::isfinite(hist.pearson));
  EXPECT_GT(hist.pearson, exact.pearson - 0.15);
  EXPECT_GT(hist.TopKMeanAccuracy(5), exact.TopKMeanAccuracy(5) - 0.1);
}

TEST_F(PipelineTest, RecommenderReturnsSortedTopModels) {
  Strategy tg{PredictorKind::kLinearRegression, GraphLearner::kNode2Vec,
              FeatureSet::kAll};
  std::vector<Recommendation> recs =
      RecommendModels(pipeline_.get(), FastConfig(tg), target_, 5);
  ASSERT_EQ(recs.size(), 5u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].predicted_score, recs[i].predicted_score);
  }
  for (const Recommendation& rec : recs) {
    EXPECT_FALSE(rec.model_name.empty());
  }
}

}  // namespace
}  // namespace tg::core
