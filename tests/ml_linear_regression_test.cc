#include <cmath>

#include <gtest/gtest.h>

#include "ml/linear_regression.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

TabularDataset MakeLinearData(size_t n, Rng* rng, double noise = 0.0) {
  TabularDataset data;
  data.x = Matrix::Gaussian(n, 3, rng);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    data.y[i] = 2.0 * data.x(i, 0) - 1.0 * data.x(i, 1) +
                0.5 * data.x(i, 2) + 4.0 + noise * rng->NextGaussian();
  }
  return data;
}

TEST(LinearRegressionTest, RecoversNoiselessRelation) {
  Rng rng(1);
  TabularDataset data = MakeLinearData(300, &rng);
  LinearRegression model(1e-6);
  ASSERT_TRUE(model.Fit(data).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(model.Predict(data.x.Row(i)), data.y[i], 1e-4);
  }
}

TEST(LinearRegressionTest, InterceptLearned) {
  Rng rng(2);
  // Zero features: prediction must be the target mean.
  TabularDataset data;
  data.x = Matrix(50, 2);
  data.y.assign(50, 7.5);
  LinearRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.Predict({0.0, 0.0}), 7.5, 1e-9);
}

TEST(LinearRegressionTest, NoisyFitStillCorrelates) {
  Rng rng(3);
  TabularDataset data = MakeLinearData(500, &rng, /*noise=*/0.5);
  LinearRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> pred = model.PredictBatch(data.x);
  EXPECT_GT(PearsonCorrelation(pred, data.y), 0.95);
}

TEST(LinearRegressionTest, ConstantFeatureColumnHandled) {
  Rng rng(4);
  TabularDataset data;
  data.x = Matrix(100, 2);
  data.y.resize(100);
  for (size_t i = 0; i < 100; ++i) {
    data.x(i, 0) = 1.0;  // constant column
    data.x(i, 1) = rng.NextGaussian();
    data.y[i] = 3.0 * data.x(i, 1);
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> pred = model.PredictBatch(data.x);
  EXPECT_GT(PearsonCorrelation(pred, data.y), 0.999);
}

TEST(LinearRegressionTest, RejectsEmptyData) {
  LinearRegression model;
  TabularDataset empty;
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(LinearRegressionTest, RejectsSizeMismatch) {
  TabularDataset data;
  data.x = Matrix(5, 2);
  data.y.resize(4);
  LinearRegression model;
  EXPECT_FALSE(model.Fit(data).ok());
}

TEST(StandardizerTest, TransformsToZeroMeanUnitVariance) {
  Rng rng(5);
  Matrix x = Matrix::Gaussian(400, 3, &rng, 5.0, 2.0);
  Standardizer standardizer;
  standardizer.Fit(x);
  Matrix z = standardizer.Transform(x);
  for (size_t c = 0; c < 3; ++c) {
    std::vector<double> col = z.Col(c);
    EXPECT_NEAR(Mean(col), 0.0, 1e-9);
    EXPECT_NEAR(StdDev(col), 1.0, 1e-9);
  }
}

TEST(StandardizerTest, RowTransformMatchesMatrix) {
  Rng rng(6);
  Matrix x = Matrix::Gaussian(50, 4, &rng);
  Standardizer standardizer;
  standardizer.Fit(x);
  Matrix z = standardizer.Transform(x);
  std::vector<double> row = standardizer.TransformRow(x.Row(7));
  for (size_t c = 0; c < 4; ++c) EXPECT_NEAR(row[c], z(7, c), 1e-12);
}

TEST(MetricsTest, RmseAndRSquared) {
  std::vector<double> pred = {1, 2, 3};
  std::vector<double> target = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Rmse(pred, target), 0.0);
  EXPECT_DOUBLE_EQ(RSquared(pred, target), 1.0);

  std::vector<double> off = {2, 3, 4};
  EXPECT_DOUBLE_EQ(Rmse(off, target), 1.0);
  EXPECT_LT(RSquared(off, target), 1.0);
}

}  // namespace
}  // namespace tg::ml
