#include <cmath>

#include <gtest/gtest.h>

#include "numeric/stats.h"
#include "zoo/finetune_simulator.h"

namespace tg::zoo {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() {
    CatalogOptions catalog_options;
    catalog_options.num_image_models = 60;
    catalog_options.num_text_models = 30;
    catalog_ = BuildCatalog(catalog_options);
    WorldConfig world_config;
    world_config.max_samples_per_dataset = 100;
    world_ = std::make_unique<SyntheticWorld>(catalog_, world_config);
    simulator_ = std::make_unique<FineTuneSimulator>(*world_);
  }

  size_t FindDataset(const std::string& name) const {
    for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
      if (catalog_.datasets[d].name == name) return d;
    }
    ADD_FAILURE() << "missing dataset " << name;
    return 0;
  }

  Catalog catalog_;
  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<FineTuneSimulator> simulator_;
};

TEST_F(SimulatorTest, AccuraciesInValidRange) {
  for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
    for (size_t m = 0; m < catalog_.models.size(); ++m) {
      if (catalog_.models[m].modality != catalog_.datasets[d].modality) {
        continue;
      }
      const double acc = simulator_->Accuracy(m, d);
      EXPECT_GT(acc, 0.0);
      EXPECT_LT(acc, 1.0);
    }
  }
}

TEST_F(SimulatorTest, LowVarianceDatasetsHaveTinySpread) {
  const size_t eurosat = FindDataset("eurosat");
  std::vector<double> accs = simulator_->AccuracyColumn(eurosat);
  EXPECT_LT(StdDev(accs), 0.05);

  const size_t cars = FindDataset("stanfordcars");
  std::vector<double> cars_accs = simulator_->AccuracyColumn(cars);
  EXPECT_GT(StdDev(cars_accs), StdDev(accs));
}

TEST_F(SimulatorTest, AffinityDrivesAccuracy) {
  const size_t target = FindDataset("pets");
  std::vector<double> affinity;
  std::vector<double> accuracy;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kImage) continue;
    affinity.push_back(world_->Affinity(m, target));
    accuracy.push_back(simulator_->Accuracy(m, target));
  }
  EXPECT_GT(PearsonCorrelation(affinity, accuracy), 0.3);
}

TEST_F(SimulatorTest, HiddenQualityDrivesAccuracy) {
  const size_t target = FindDataset("cifar100");
  std::vector<double> quality;
  std::vector<double> accuracy;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kImage) continue;
    quality.push_back(world_->Quality(m));
    accuracy.push_back(simulator_->Accuracy(m, target));
  }
  EXPECT_GT(PearsonCorrelation(quality, accuracy), 0.2);
}

TEST_F(SimulatorTest, LoraCorrelatedButNotIdentical) {
  const size_t target = FindDataset("glue/sst2");
  std::vector<double> full;
  std::vector<double> lora;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kText) continue;
    full.push_back(
        simulator_->Accuracy(m, target, FineTuneMethod::kFullFineTune));
    lora.push_back(simulator_->Accuracy(m, target, FineTuneMethod::kLora));
  }
  const double corr = PearsonCorrelation(full, lora);
  EXPECT_GT(corr, 0.5);
  EXPECT_LT(corr, 0.999);
  // Systematic drop on average.
  EXPECT_LT(Mean(lora), Mean(full));
}

TEST_F(SimulatorTest, DeterministicAcrossInstances) {
  FineTuneSimulator second(*world_);
  const size_t target = FindDataset("dtd");
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kImage) continue;
    EXPECT_DOUBLE_EQ(simulator_->Accuracy(m, target),
                     second.Accuracy(m, target));
  }
}

TEST_F(SimulatorTest, AccuracyColumnMatchesPerPairQueries) {
  const size_t target = FindDataset("svhn");
  std::vector<double> column = simulator_->AccuracyColumn(target);
  size_t i = 0;
  for (size_t m = 0; m < catalog_.models.size(); ++m) {
    if (catalog_.models[m].modality != Modality::kImage) continue;
    EXPECT_DOUBLE_EQ(column[i], simulator_->Accuracy(m, target));
    ++i;
  }
  EXPECT_EQ(i, column.size());
}

TEST_F(SimulatorTest, BaseAccuracyFallsWithDifficulty) {
  // Across datasets, base accuracy anti-correlates with difficulty.
  std::vector<double> base;
  std::vector<double> difficulty;
  for (size_t d = 0; d < catalog_.datasets.size(); ++d) {
    base.push_back(simulator_->base_accuracy(d));
    difficulty.push_back(world_->Difficulty(d));
  }
  EXPECT_LT(PearsonCorrelation(base, difficulty), -0.95);
}

}  // namespace
}  // namespace tg::zoo
