#include <map>

#include <gtest/gtest.h>

#include "embedding/random_walk.h"

namespace tg {
namespace {

Graph PathGraph(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(NodeType::kDataset, "n" + std::to_string(i));
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddUndirectedEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                        EdgeType::kDatasetDataset, 1.0);
  }
  return g;
}

Graph TriangleWithTail() {
  // 0-1-2 triangle, 2-3 tail.
  Graph g;
  for (int i = 0; i < 4; ++i) {
    g.AddNode(NodeType::kDataset, "n" + std::to_string(i));
  }
  g.AddUndirectedEdge(0, 1, EdgeType::kDatasetDataset, 1.0);
  g.AddUndirectedEdge(1, 2, EdgeType::kDatasetDataset, 1.0);
  g.AddUndirectedEdge(0, 2, EdgeType::kDatasetDataset, 1.0);
  g.AddUndirectedEdge(2, 3, EdgeType::kDatasetDataset, 1.0);
  return g;
}

TEST(RandomWalkTest, WalkLengthRespected) {
  Graph g = PathGraph(10);
  WalkConfig config;
  config.walk_length = 7;
  RandomWalkGenerator walker(g, config);
  Rng rng(1);
  auto walk = walker.Walk(0, &rng);
  EXPECT_EQ(walk.size(), 7u);
  EXPECT_EQ(walk[0], 0u);
}

TEST(RandomWalkTest, StepsFollowEdges) {
  Graph g = PathGraph(6);
  RandomWalkGenerator walker(g, WalkConfig{});
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto walk = walker.Walk(2, &rng);
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      EXPECT_TRUE(g.HasEdgeBetween(walk[i], walk[i + 1]))
          << walk[i] << "->" << walk[i + 1];
    }
  }
}

TEST(RandomWalkTest, IsolatedNodeStops) {
  Graph g;
  g.AddNode(NodeType::kModel, "alone");
  RandomWalkGenerator walker(g, WalkConfig{});
  Rng rng(3);
  auto walk = walker.Walk(0, &rng);
  EXPECT_EQ(walk.size(), 1u);
}

TEST(RandomWalkTest, GenerateAllCount) {
  Graph g = PathGraph(5);
  WalkConfig config;
  config.walks_per_node = 3;
  RandomWalkGenerator walker(g, config);
  Rng rng(4);
  auto walks = walker.GenerateAll(&rng);
  EXPECT_EQ(walks.size(), 15u);
}

TEST(RandomWalkTest, LowPEncouragesBacktracking) {
  Graph g = PathGraph(20);
  WalkConfig returny;
  returny.p = 0.05;
  returny.q = 1.0;
  returny.walk_length = 50;
  WalkConfig explory;
  explory.p = 20.0;
  explory.q = 1.0;
  explory.walk_length = 50;

  auto count_backtracks = [&](const WalkConfig& config, uint64_t seed) {
    RandomWalkGenerator walker(g, config);
    Rng rng(seed);
    int backtracks = 0;
    int steps = 0;
    for (int trial = 0; trial < 50; ++trial) {
      auto walk = walker.Walk(10, &rng);
      for (size_t i = 2; i < walk.size(); ++i) {
        ++steps;
        if (walk[i] == walk[i - 2]) ++backtracks;
      }
    }
    return static_cast<double>(backtracks) / steps;
  };

  EXPECT_GT(count_backtracks(returny, 5), count_backtracks(explory, 5) + 0.2);
}

TEST(RandomWalkTest, TransitionBiasClassic) {
  Graph g = TriangleWithTail();
  WalkConfig config;
  config.p = 4.0;
  config.q = 0.25;
  RandomWalkGenerator walker(g, config);
  // At node 2 coming from node 1:
  EXPECT_DOUBLE_EQ(walker.TransitionBias(1, 1), 0.25);  // return: 1/p
  EXPECT_DOUBLE_EQ(walker.TransitionBias(1, 0), 1.0);   // 0 adjacent to 1
  EXPECT_DOUBLE_EQ(walker.TransitionBias(1, 3), 4.0);   // 3 not adjacent: 1/q
}

TEST(RandomWalkTest, ExtendedBiasInterpolatesWithWeight) {
  // Two graphs identical except the candidate-previous edge weight.
  auto make = [](double weight) {
    Graph g;
    for (int i = 0; i < 3; ++i) {
      g.AddNode(NodeType::kDataset, "n" + std::to_string(i));
    }
    // walk ... t=0, v=1, candidate=2; (2,0) edge with `weight`.
    g.AddUndirectedEdge(0, 1, EdgeType::kDatasetDataset, 1.0);
    g.AddUndirectedEdge(1, 2, EdgeType::kDatasetDataset, 1.0);
    g.AddUndirectedEdge(2, 0, EdgeType::kDatasetDataset, weight);
    return g;
  };

  WalkConfig config;
  config.q = 4.0;  // 1/q = 0.25
  config.extended = true;

  Graph strong = make(1.0);
  Graph weak = make(0.05);
  RandomWalkGenerator strong_walker(strong, config);
  RandomWalkGenerator weak_walker(weak, config);

  const double strong_bias = strong_walker.TransitionBias(0, 2);
  const double weak_bias = weak_walker.TransitionBias(0, 2);
  // Strong connection behaves like an in-edge (bias ~1); weak connection
  // approaches the out-edge bias 1/q.
  EXPECT_NEAR(strong_bias, 1.0, 1e-9);
  EXPECT_LT(weak_bias, 0.5);
  EXPECT_GT(weak_bias, 0.25 - 1e-9);
}

TEST(RandomWalkTest, WeightedFirstStepPrefersHeavyEdge) {
  Graph g;
  g.AddNode(NodeType::kDataset, "hub");
  g.AddNode(NodeType::kDataset, "heavy");
  g.AddNode(NodeType::kDataset, "light");
  g.AddUndirectedEdge(0, 1, EdgeType::kDatasetDataset, 10.0);
  g.AddUndirectedEdge(0, 2, EdgeType::kDatasetDataset, 0.1);
  WalkConfig config;
  config.walk_length = 2;
  RandomWalkGenerator walker(g, config);
  Rng rng(7);
  int heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    auto walk = walker.Walk(0, &rng);
    ASSERT_EQ(walk.size(), 2u);
    if (walk[1] == 1) ++heavy;
  }
  EXPECT_GT(heavy, 1900);
}

}  // namespace
}  // namespace tg
