#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "numeric/stats.h"

namespace tg::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 48;
    config.catalog.num_text_models = 24;
    config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
    target_ = zoo_->EvaluationTargets(zoo::Modality::kImage)[0];
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  size_t target_ = 0;
};

TEST_F(BaselinesTest, LogMeBaselineBeatsRandomOnAverage) {
  TargetEvaluation logme = EvaluateEstimatorBaseline(
      zoo_.get(), target_, EstimatorBaseline::kLogMe);
  // Average several random baselines for a stable comparison.
  double random_mean = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    random_mean +=
        EvaluateRandomBaseline(zoo_.get(), target_, seed).pearson;
  }
  random_mean /= 10.0;
  EXPECT_GT(logme.pearson, random_mean + 0.1);
}

TEST_F(BaselinesTest, AllEstimatorsProduceFiniteScores) {
  for (EstimatorBaseline baseline :
       {EstimatorBaseline::kLogMe, EstimatorBaseline::kLeep,
        EstimatorBaseline::kNce, EstimatorBaseline::kParc,
        EstimatorBaseline::kHScore}) {
    TargetEvaluation eval =
        EvaluateEstimatorBaseline(zoo_.get(), target_, baseline);
    EXPECT_EQ(eval.predicted.size(), 48u)
        << EstimatorBaselineName(baseline);
    EXPECT_TRUE(std::isfinite(eval.pearson))
        << EstimatorBaselineName(baseline);
  }
}

TEST_F(BaselinesTest, RandomBaselineNearZeroOnAverage) {
  double total = 0.0;
  const int trials = 30;
  for (int seed = 0; seed < trials; ++seed) {
    total += EvaluateRandomBaseline(zoo_.get(), target_,
                                    static_cast<uint64_t>(seed))
                 .pearson;
  }
  EXPECT_NEAR(total / trials, 0.0, 0.1);
}

TEST_F(BaselinesTest, RandomBaselineDeterministicPerSeed) {
  TargetEvaluation a = EvaluateRandomBaseline(zoo_.get(), target_, 7);
  TargetEvaluation b = EvaluateRandomBaseline(zoo_.get(), target_, 7);
  EXPECT_EQ(a.predicted, b.predicted);
}

TEST_F(BaselinesTest, EstimatorNamesStable) {
  EXPECT_STREQ(EstimatorBaselineName(EstimatorBaseline::kLogMe), "LogME");
  EXPECT_STREQ(EstimatorBaselineName(EstimatorBaseline::kLeep), "LEEP");
  EXPECT_STREQ(EstimatorBaselineName(EstimatorBaseline::kNce), "NCE");
  EXPECT_STREQ(EstimatorBaselineName(EstimatorBaseline::kParc), "PARC");
  EXPECT_STREQ(EstimatorBaselineName(EstimatorBaseline::kHScore), "H-Score");
}

TEST_F(BaselinesTest, WorksOnTextModality) {
  const size_t text_target =
      zoo_->EvaluationTargets(zoo::Modality::kText)[0];
  TargetEvaluation eval = EvaluateEstimatorBaseline(
      zoo_.get(), text_target, EstimatorBaseline::kLogMe);
  EXPECT_EQ(eval.predicted.size(), 24u);
  EXPECT_TRUE(std::isfinite(eval.pearson));
}

}  // namespace
}  // namespace tg::core
