#include <cmath>

#include <gtest/gtest.h>

#include "embedding/node2vec.h"
#include "embedding/skipgram.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg {
namespace {

// Two disjoint cliques: tokens 0-3 co-occur, tokens 4-7 co-occur.
std::vector<std::vector<uint32_t>> TwoClusterCorpus(Rng* rng,
                                                    int walks = 300) {
  std::vector<std::vector<uint32_t>> corpus;
  for (int w = 0; w < walks; ++w) {
    const uint32_t base = (w % 2 == 0) ? 0 : 4;
    std::vector<uint32_t> walk;
    for (int t = 0; t < 20; ++t) {
      walk.push_back(base + static_cast<uint32_t>(rng->NextBelow(4)));
    }
    corpus.push_back(std::move(walk));
  }
  return corpus;
}

double CosineOfRows(const Matrix& emb, uint32_t a, uint32_t b) {
  return CosineSimilarity(emb.Row(a), emb.Row(b));
}

TEST(SkipGramTest, EmbeddingShape) {
  SkipGramConfig config;
  config.dim = 16;
  config.epochs = 1;
  SkipGramTrainer trainer(10, config);
  EXPECT_EQ(trainer.embeddings().rows(), 10u);
  EXPECT_EQ(trainer.embeddings().cols(), 16u);
}

TEST(SkipGramTest, ClusteredTokensEndUpCloser) {
  Rng rng(1);
  auto corpus = TwoClusterCorpus(&rng);
  SkipGramConfig config;
  config.dim = 16;
  config.epochs = 3;
  SkipGramTrainer trainer(8, config);
  trainer.Train(corpus, &rng);
  const Matrix& emb = trainer.embeddings();

  // Average within-cluster vs cross-cluster cosine similarity.
  double within = 0.0;
  double across = 0.0;
  int wn = 0;
  int an = 0;
  for (uint32_t a = 0; a < 8; ++a) {
    for (uint32_t b = a + 1; b < 8; ++b) {
      const bool same = (a < 4) == (b < 4);
      if (same) {
        within += CosineOfRows(emb, a, b);
        ++wn;
      } else {
        across += CosineOfRows(emb, a, b);
        ++an;
      }
    }
  }
  EXPECT_GT(within / wn, across / an + 0.3);
}

TEST(SkipGramTest, PairProbabilityReflectsCooccurrence) {
  Rng rng(2);
  auto corpus = TwoClusterCorpus(&rng);
  SkipGramConfig config;
  config.dim = 16;
  config.epochs = 3;
  SkipGramTrainer trainer(8, config);
  trainer.Train(corpus, &rng);
  EXPECT_GT(trainer.PairProbability(0, 1), trainer.PairProbability(0, 5));
}

TEST(SkipGramTest, DeterministicGivenSeed) {
  auto run = [] {
    Rng rng(3);
    auto corpus = TwoClusterCorpus(&rng, 50);
    SkipGramConfig config;
    config.dim = 8;
    config.epochs = 1;
    SkipGramTrainer trainer(8, config);
    trainer.Train(corpus, &rng);
    return trainer.embeddings();
  };
  Matrix a = run();
  Matrix b = run();
  EXPECT_LT((a - b).MaxAbs(), 1e-15);
}

TEST(SkipGramTest, EmptyCorpusIsNoop) {
  SkipGramConfig config;
  config.dim = 4;
  SkipGramTrainer trainer(5, config);
  Matrix before = trainer.embeddings();
  Rng rng(4);
  trainer.Train({}, &rng);
  EXPECT_LT((trainer.embeddings() - before).MaxAbs(), 1e-15);
}

// --- End-to-end Node2Vec over a graph ---

Graph TwoCliquesBridge() {
  Graph g;
  for (int i = 0; i < 10; ++i) {
    g.AddNode(NodeType::kDataset, "n" + std::to_string(i));
  }
  auto clique = [&](NodeId lo, NodeId hi) {
    for (NodeId a = lo; a <= hi; ++a) {
      for (NodeId b = a + 1; b <= hi; ++b) {
        g.AddUndirectedEdge(a, b, EdgeType::kDatasetDataset, 1.0);
      }
    }
  };
  clique(0, 4);
  clique(5, 9);
  g.AddUndirectedEdge(4, 5, EdgeType::kDatasetDataset, 0.2);  // weak bridge
  return g;
}

TEST(Node2VecTest, CommunityStructureInEmbeddings) {
  Graph g = TwoCliquesBridge();
  Node2VecConfig config;
  config.walk.walks_per_node = 20;
  config.walk.walk_length = 20;
  config.skipgram.dim = 16;
  config.skipgram.epochs = 3;
  Matrix emb = Node2VecEmbed(g, config, /*seed=*/11);
  ASSERT_EQ(emb.rows(), 10u);

  double within = CosineSimilarity(emb.Row(0), emb.Row(3));
  double across = CosineSimilarity(emb.Row(0), emb.Row(8));
  EXPECT_GT(within, across + 0.2);
}

TEST(Node2VecTest, PlusVariantAlsoRecoversCommunities) {
  Graph g = TwoCliquesBridge();
  Node2VecConfig config;
  config.walk.walks_per_node = 20;
  config.walk.walk_length = 20;
  config.walk.extended = true;
  config.skipgram.dim = 16;
  config.skipgram.epochs = 3;
  Matrix emb = Node2VecEmbed(g, config, /*seed=*/13);
  double within = CosineSimilarity(emb.Row(1), emb.Row(2));
  double across = CosineSimilarity(emb.Row(1), emb.Row(7));
  EXPECT_GT(within, across + 0.2);
}

}  // namespace
}  // namespace tg
