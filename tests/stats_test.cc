#include <cmath>

#include <gtest/gtest.h>

#include "numeric/stats.h"
#include "util/rng.h"

namespace tg {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
}

TEST(StatsTest, EmptyVectorIsSafe) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(StatsTest, MinMax) {
  std::vector<double> v = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(StatsTest, Quantile) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(PearsonTest, PerfectPositive) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {10, 20, 30, 40};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {5, 3, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesYieldsZero) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(PearsonTest, AffineInvariance) {
  Rng rng(3);
  std::vector<double> a(100);
  std::vector<double> b(100);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextGaussian();
    b[i] = 0.7 * a[i] + rng.NextGaussian();
  }
  const double base = PearsonCorrelation(a, b);
  std::vector<double> scaled = a;
  for (double& v : scaled) v = 5.0 * v - 3.0;
  EXPECT_NEAR(PearsonCorrelation(scaled, b), base, 1e-12);
}

TEST(PearsonTest, IndependentSeriesNearZero) {
  Rng rng(5);
  std::vector<double> a(5000);
  std::vector<double> b(5000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
  }
  EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.05);
}

TEST(AverageRanksTest, SimpleOrdering) {
  std::vector<double> v = {30, 10, 20};
  EXPECT_EQ(AverageRanks(v), (std::vector<double>{3, 1, 2}));
}

TEST(AverageRanksTest, TiesGetAverageRank) {
  std::vector<double> v = {5, 5, 1};
  auto ranks = AverageRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 1.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {1, 8, 27, 64, 125};  // cubic, monotone
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {9, 7, 5, 2};
  EXPECT_NEAR(SpearmanCorrelation(a, b), -1.0, 1e-12);
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  std::vector<double> v = {2, 4, 6};
  auto n = MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(MinMaxNormalizeTest, ConstantMapsToHalf) {
  auto n = MinMaxNormalize({3, 3, 3});
  for (double v : n) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(MinMaxNormalizeTest, EmptyInput) {
  EXPECT_TRUE(MinMaxNormalize({}).empty());
}

TEST(DistanceTest, CorrelationDistanceBounds) {
  std::vector<double> a = {1, 2, 3};
  EXPECT_NEAR(CorrelationDistance(a, a), 0.0, 1e-12);
  std::vector<double> b = {3, 2, 1};
  EXPECT_NEAR(CorrelationDistance(a, b), 2.0, 1e-12);
}

TEST(DistanceTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {-1, -1}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(DistanceTest, Euclidean) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

}  // namespace
}  // namespace tg
