#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/graph_stats.h"

namespace tg {
namespace {

Graph SmallGraph() {
  // d0 -- d1 (similarity), m0 -- d0 (accuracy), m0 -- d1 (transferability).
  Graph g;
  NodeId d0 = g.AddNode(NodeType::kDataset, "d0");
  NodeId d1 = g.AddNode(NodeType::kDataset, "d1");
  NodeId m0 = g.AddNode(NodeType::kModel, "m0");
  g.AddUndirectedEdge(d0, d1, EdgeType::kDatasetDataset, 0.8);
  g.AddUndirectedEdge(m0, d0, EdgeType::kModelDatasetAccuracy, 0.9);
  g.AddUndirectedEdge(m0, d1, EdgeType::kModelDatasetTransferability, 0.6);
  return g;
}

TEST(GraphTest, NodeAccounting) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_EQ(g.node_type(0), NodeType::kDataset);
  EXPECT_EQ(g.node_type(2), NodeType::kModel);
  EXPECT_EQ(g.node_name(1), "d1");
}

TEST(GraphTest, FindNode) {
  Graph g = SmallGraph();
  Result<NodeId> found = g.FindNode("m0");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 2u);
  EXPECT_FALSE(g.FindNode("nope").ok());
  EXPECT_TRUE(g.HasNode("d0"));
  EXPECT_FALSE(g.HasNode("d9"));
}

TEST(GraphTest, AdjacencySymmetric) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.degree(0), 2u);  // d0: d1, m0
  EXPECT_EQ(g.degree(2), 2u);  // m0: d0, d1
  EXPECT_TRUE(g.HasEdgeBetween(0, 1));
  EXPECT_TRUE(g.HasEdgeBetween(1, 0));
  EXPECT_FALSE(g.HasEdgeBetween(0, 0));
}

TEST(GraphTest, EdgeWeightsAndTypes) {
  Graph g = SmallGraph();
  double weighted = g.WeightedDegree(2);
  EXPECT_NEAR(weighted, 0.9 + 0.6, 1e-12);
  const auto& edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].type, EdgeType::kDatasetDataset);
  EXPECT_DOUBLE_EQ(edges[1].weight, 0.9);
}

TEST(GraphTest, NodesOfType) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.NodesOfType(NodeType::kDataset).size(), 2u);
  EXPECT_EQ(g.NodesOfType(NodeType::kModel).size(), 1u);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.CountConnectedComponents(), 1u);
  g.AddNode(NodeType::kModel, "isolated");
  EXPECT_EQ(g.CountConnectedComponents(), 2u);
}

TEST(GraphTest, MultipleEdgeTypesBetweenSamePair) {
  Graph g;
  NodeId d = g.AddNode(NodeType::kDataset, "d");
  NodeId m = g.AddNode(NodeType::kModel, "m");
  g.AddUndirectedEdge(m, d, EdgeType::kModelDatasetAccuracy, 0.8);
  g.AddUndirectedEdge(m, d, EdgeType::kModelDatasetTransferability, 0.7);
  EXPECT_EQ(g.degree(m), 2u);
  EXPECT_TRUE(g.HasEdgeBetween(m, d));
}

TEST(GraphStatsTest, CountsMatch) {
  Graph g = SmallGraph();
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_dataset_nodes, 2u);
  EXPECT_EQ(stats.num_model_nodes, 1u);
  // D-D counted as ordered pairs.
  EXPECT_EQ(stats.dataset_dataset_edges, 2u);
  EXPECT_EQ(stats.model_dataset_accuracy_edges, 1u);
  EXPECT_EQ(stats.model_dataset_transferability_edges, 1u);
  EXPECT_NEAR(stats.average_degree, 6.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.connected_components, 1u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphTypeNamesTest, Names) {
  EXPECT_STREQ(NodeTypeName(NodeType::kDataset), "dataset");
  EXPECT_STREQ(EdgeTypeName(EdgeType::kModelDatasetAccuracy),
               "model-dataset-accuracy");
}

}  // namespace
}  // namespace tg
