#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/budget_search.h"

namespace tg::core {
namespace {

class BudgetSearchTest : public ::testing::Test {
 protected:
  BudgetSearchTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 40;
    config.world.max_samples_per_dataset = 64;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
    target_ = zoo_->EvaluationTargets(zoo::Modality::kImage)[0];

    evaluation_.target_dataset = target_;
    evaluation_.target_name = zoo_->datasets()[target_].name;
    evaluation_.model_indices = zoo_->ModelsOfModality(zoo::Modality::kImage);
    Rng rng(1);
    for (size_t m : evaluation_.model_indices) {
      evaluation_.predicted.push_back(0.5 + 0.3 * rng.NextDouble());
      evaluation_.actual.push_back(zoo_->FineTuneAccuracy(m, target_));
    }
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
  size_t target_ = 0;
  TargetEvaluation evaluation_;
};

TEST_F(BudgetSearchTest, CostGrowsWithModelSize) {
  BudgetOptions options;
  // Large enough that small datasets don't floor both costs at the minimum.
  options.cost_per_mparam_msample = 5.0;
  // Compare a small and a big image model.
  size_t small = 0, big = 0;
  double small_params = 1e18, big_params = -1.0;
  for (size_t m : evaluation_.model_indices) {
    const double p = zoo_->models()[m].num_parameters_millions;
    if (p < small_params) {
      small_params = p;
      small = m;
    }
    if (p > big_params) {
      big_params = p;
      big = m;
    }
  }
  EXPECT_LT(EstimateFineTuneCost(*zoo_, small, target_, options),
            EstimateFineTuneCost(*zoo_, big, target_, options));
}

TEST_F(BudgetSearchTest, PlanRespectsBudget) {
  BudgetOptions options;
  options.budget_gpu_hours = 5.0;
  BudgetPlan plan = PlanFineTuning(*zoo_, evaluation_, options);
  EXPECT_LE(plan.total_cost_gpu_hours, options.budget_gpu_hours + 1e-9);
  EXPECT_FALSE(plan.selected.empty());
  // No duplicate models.
  std::set<size_t> seen;
  for (const auto& entry : plan.selected) {
    EXPECT_TRUE(seen.insert(entry.model_index).second);
  }
}

TEST_F(BudgetSearchTest, BiggerBudgetNeverWorse) {
  BudgetOptions small;
  small.budget_gpu_hours = 2.0;
  BudgetOptions large;
  large.budget_gpu_hours = 50.0;
  BudgetPlan plan_small = PlanFineTuning(*zoo_, evaluation_, small);
  BudgetPlan plan_large = PlanFineTuning(*zoo_, evaluation_, large);
  EXPECT_GE(plan_large.selected.size(), plan_small.selected.size());
  EXPECT_GE(plan_large.expected_best_accuracy,
            plan_small.expected_best_accuracy - 1e-6);
}

TEST_F(BudgetSearchTest, TopPredictedModelChosenWhenAffordable) {
  BudgetOptions options;
  options.budget_gpu_hours = 1000.0;
  BudgetPlan plan = PlanFineTuning(*zoo_, evaluation_, options);
  ASSERT_FALSE(plan.selected.empty());
  double best_pred = 0.0;
  for (double p : evaluation_.predicted) best_pred = std::max(best_pred, p);
  EXPECT_DOUBLE_EQ(plan.selected[0].predicted_score, best_pred);
}

TEST_F(BudgetSearchTest, MaxModelsCapRespected) {
  BudgetOptions options;
  options.budget_gpu_hours = 1e6;
  options.max_models = 3;
  BudgetPlan plan = PlanFineTuning(*zoo_, evaluation_, options);
  EXPECT_LE(plan.selected.size(), 3u);
}

TEST(ExpectedBestOfTest, SingleMeanNoNoise) {
  EXPECT_DOUBLE_EQ(ExpectedBestOf({0.7}, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(ExpectedBestOf({0.3, 0.9, 0.5}, 0.0), 0.9);
  EXPECT_DOUBLE_EQ(ExpectedBestOf({}, 0.1), 0.0);
}

TEST(ExpectedBestOfTest, MoreCandidatesRaiseExpectedBest) {
  const double one = ExpectedBestOf({0.7}, 0.05);
  const double three = ExpectedBestOf({0.7, 0.7, 0.7}, 0.05);
  EXPECT_GT(three, one + 0.01);
}

TEST(ExpectedBestOfTest, ApproximatesGaussianMaxFormula) {
  // E[max of two iid N(0, 1)] = 1/sqrt(pi) ~ 0.5642.
  const double estimate = ExpectedBestOf({0.0, 0.0}, 1.0);
  EXPECT_NEAR(estimate, 0.5642, 0.05);
}

}  // namespace
}  // namespace tg::core
