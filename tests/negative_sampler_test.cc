#include <set>

#include <gtest/gtest.h>

#include "graph/negative_sampler.h"

namespace tg {
namespace {

Graph RingGraph(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(NodeType::kDataset, "n" + std::to_string(i));
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddUndirectedEdge(static_cast<NodeId>(i),
                        static_cast<NodeId>((i + 1) % n),
                        EdgeType::kDatasetDataset, 1.0);
  }
  return g;
}

TEST(NegativeSamplerTest, SampledPairsAreNonEdges) {
  Graph g = RingGraph(12);
  Rng rng(1);
  auto negatives = SampleNegativeEdges(g, 20, &rng);
  EXPECT_EQ(negatives.size(), 20u);
  for (const auto& [a, b] : negatives) {
    EXPECT_NE(a, b);
    EXPECT_FALSE(g.HasEdgeBetween(a, b));
  }
}

TEST(NegativeSamplerTest, NoDuplicatesWithinCall) {
  Graph g = RingGraph(10);
  Rng rng(2);
  auto negatives = SampleNegativeEdges(g, 15, &rng);
  std::set<std::pair<NodeId, NodeId>> seen(negatives.begin(),
                                           negatives.end());
  EXPECT_EQ(seen.size(), negatives.size());
}

TEST(NegativeSamplerTest, SaturatedGraphReturnsFewer) {
  // Complete graph on 4 nodes has no non-edges.
  Graph g;
  for (int i = 0; i < 4; ++i) {
    g.AddNode(NodeType::kModel, "m" + std::to_string(i));
  }
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      g.AddUndirectedEdge(a, b, EdgeType::kDatasetDataset, 1.0);
    }
  }
  Rng rng(3);
  auto negatives = SampleNegativeEdges(g, 10, &rng);
  EXPECT_TRUE(negatives.empty());
}

TEST(UnigramSamplerTest, HigherDegreeSampledMoreOften) {
  // Star graph: center has degree n-1, leaves degree 1.
  Graph g;
  NodeId center = g.AddNode(NodeType::kModel, "center");
  for (int i = 0; i < 9; ++i) {
    NodeId leaf = g.AddNode(NodeType::kDataset, "leaf" + std::to_string(i));
    g.AddUndirectedEdge(center, leaf, EdgeType::kModelDatasetAccuracy, 1.0);
  }
  UnigramNegativeSampler sampler(g, 0.75);
  Rng rng(4);
  int center_hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sampler.Sample(&rng) == center) ++center_hits;
  }
  // Center frequency ~ 10^0.75 / (10^0.75 + 9 * 2^0.75) ~ 0.27.
  EXPECT_GT(center_hits, n / 5);
  EXPECT_LT(center_hits, n / 2);
}

TEST(UnigramSamplerTest, FrequencyConstructor) {
  UnigramNegativeSampler sampler({1.0, 100.0}, 1.0);
  Rng rng(5);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample(&rng) == 1) ++ones;
  }
  EXPECT_GT(ones, 9500);
}

}  // namespace
}  // namespace tg
