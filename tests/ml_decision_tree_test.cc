#include <numeric>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

double VarianceOf(const std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return acc / static_cast<double>(v.size());
}

TEST(DecisionTreeTest, SingleSplitRecovered) {
  // y = 1 if x0 > 0.5 else 0.
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  DecisionTree tree(TreeConfig{.max_depth = 1});
  tree.Fit(x, y, AllRows(100), nullptr);
  EXPECT_DOUBLE_EQ(tree.Predict({0.2}), 0.0);
  EXPECT_DOUBLE_EQ(tree.Predict({0.9}), 1.0);
}

TEST(DecisionTreeTest, DepthZeroIsMean) {
  Matrix x(4, 1);
  std::vector<double> y = {1, 2, 3, 4};
  DecisionTree tree(TreeConfig{.max_depth = 0});
  tree.Fit(x, y, AllRows(4), nullptr);
  EXPECT_DOUBLE_EQ(tree.Predict({0.0}), 2.5);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(1);
  Matrix x = Matrix::Gaussian(200, 4, &rng);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) y[i] = rng.NextGaussian();
  DecisionTree tree(TreeConfig{.max_depth = 3});
  tree.Fit(x, y, AllRows(200), &rng);
  EXPECT_LE(tree.MaxDepthReached(), 3);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  Matrix x(10, 1);
  std::vector<double> y(10, 5.0);  // constant target
  for (size_t i = 0; i < 10; ++i) x(i, 0) = static_cast<double>(i);
  DecisionTree tree(TreeConfig{.max_depth = 5});
  tree.Fit(x, y, AllRows(10), nullptr);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({3.0}), 5.0);
}

TEST(DecisionTreeTest, XorNeedsDepthTwo) {
  Matrix x(400, 2);
  std::vector<double> y(400);
  Rng rng(2);
  for (size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = ((x(i, 0) > 0.5) != (x(i, 1) > 0.5)) ? 1.0 : 0.0;
  }
  // Greedy CART gets no gain from the ideal root split on XOR, so give the
  // deep tree a little slack (depth 4) to recover after a noisy root split.
  DecisionTree shallow(TreeConfig{.max_depth = 1});
  shallow.Fit(x, y, AllRows(400), nullptr);
  DecisionTree deep(TreeConfig{.max_depth = 4});
  deep.Fit(x, y, AllRows(400), nullptr);

  auto error = [&](const DecisionTree& tree) {
    double acc = 0.0;
    for (size_t i = 0; i < 400; ++i) {
      const double d = tree.Predict(x.Row(i)) - y[i];
      acc += d * d;
    }
    return acc / 400.0;
  };
  EXPECT_LT(error(deep), 0.05);
  EXPECT_GT(error(shallow), 0.2);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 9 ? 0.0 : 100.0;  // one outlier
  }
  // With min_samples_leaf = 3, the outlier cannot be isolated; the split at
  // 8.5 is forbidden.
  DecisionTree tree(TreeConfig{.max_depth = 1, .min_samples_leaf = 3});
  tree.Fit(x, y, AllRows(10), nullptr);
  // Any allowed split keeps the outlier with at least 2 other samples.
  EXPECT_LT(tree.Predict({9.0}), 100.0);
}

TEST(DecisionTreeTest, BootstrapRowsWithMultiplicity) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y = {0, 0, 10, 10};
  // Duplicated row indices simulate a bootstrap sample.
  std::vector<size_t> rows = {0, 0, 0, 2, 2, 3};
  DecisionTree tree(TreeConfig{.max_depth = 2});
  tree.Fit(x, y, rows, nullptr);
  EXPECT_NEAR(tree.Predict({0.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({3.0}), 10.0, 1e-9);
}

TEST(DecisionTreeTest, FeatureSubsamplingStillFits) {
  Rng rng(3);
  Matrix x = Matrix::Gaussian(300, 6, &rng);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) y[i] = x(i, 2);
  TreeConfig config;
  config.max_depth = 6;
  config.max_features = 2;
  DecisionTree tree(config);
  tree.Fit(x, y, AllRows(300), &rng);
  // With random 2-of-6 features per split and depth 6, feature 2 is found.
  double err = 0.0;
  for (size_t i = 0; i < 300; ++i) {
    const double d = tree.Predict(x.Row(i)) - y[i];
    err += d * d;
  }
  EXPECT_LT(err / 300.0, VarianceOf(y) * 0.9);
}

}  // namespace
}  // namespace tg::ml
