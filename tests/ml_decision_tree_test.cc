#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "util/rng.h"

namespace tg::ml {
namespace {

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

double VarianceOf(const std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double acc = 0.0;
  for (double x : v) acc += (x - mean) * (x - mean);
  return acc / static_cast<double>(v.size());
}

TEST(DecisionTreeTest, SingleSplitRecovered) {
  // y = 1 if x0 > 0.5 else 0.
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  DecisionTree tree(TreeConfig{.max_depth = 1});
  tree.Fit(x, y, AllRows(100), nullptr);
  EXPECT_DOUBLE_EQ(tree.Predict({0.2}), 0.0);
  EXPECT_DOUBLE_EQ(tree.Predict({0.9}), 1.0);
}

TEST(DecisionTreeTest, DepthZeroIsMean) {
  Matrix x(4, 1);
  std::vector<double> y = {1, 2, 3, 4};
  DecisionTree tree(TreeConfig{.max_depth = 0});
  tree.Fit(x, y, AllRows(4), nullptr);
  EXPECT_DOUBLE_EQ(tree.Predict({0.0}), 2.5);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(1);
  Matrix x = Matrix::Gaussian(200, 4, &rng);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) y[i] = rng.NextGaussian();
  DecisionTree tree(TreeConfig{.max_depth = 3});
  tree.Fit(x, y, AllRows(200), &rng);
  EXPECT_LE(tree.MaxDepthReached(), 3);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  Matrix x(10, 1);
  std::vector<double> y(10, 5.0);  // constant target
  for (size_t i = 0; i < 10; ++i) x(i, 0) = static_cast<double>(i);
  DecisionTree tree(TreeConfig{.max_depth = 5});
  tree.Fit(x, y, AllRows(10), nullptr);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({3.0}), 5.0);
}

TEST(DecisionTreeTest, XorNeedsDepthTwo) {
  Matrix x(400, 2);
  std::vector<double> y(400);
  Rng rng(2);
  for (size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = ((x(i, 0) > 0.5) != (x(i, 1) > 0.5)) ? 1.0 : 0.0;
  }
  // Greedy CART gets no gain from the ideal root split on XOR, so give the
  // deep tree a little slack (depth 4) to recover after a noisy root split.
  DecisionTree shallow(TreeConfig{.max_depth = 1});
  shallow.Fit(x, y, AllRows(400), nullptr);
  DecisionTree deep(TreeConfig{.max_depth = 4});
  deep.Fit(x, y, AllRows(400), nullptr);

  auto error = [&](const DecisionTree& tree) {
    double acc = 0.0;
    for (size_t i = 0; i < 400; ++i) {
      const double d = tree.Predict(x.Row(i)) - y[i];
      acc += d * d;
    }
    return acc / 400.0;
  };
  EXPECT_LT(error(deep), 0.05);
  EXPECT_GT(error(shallow), 0.2);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 9 ? 0.0 : 100.0;  // one outlier
  }
  // With min_samples_leaf = 3, the outlier cannot be isolated; the split at
  // 8.5 is forbidden.
  DecisionTree tree(TreeConfig{.max_depth = 1, .min_samples_leaf = 3});
  tree.Fit(x, y, AllRows(10), nullptr);
  // Any allowed split keeps the outlier with at least 2 other samples.
  EXPECT_LT(tree.Predict({9.0}), 100.0);
}

TEST(DecisionTreeTest, BootstrapRowsWithMultiplicity) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y = {0, 0, 10, 10};
  // Duplicated row indices simulate a bootstrap sample.
  std::vector<size_t> rows = {0, 0, 0, 2, 2, 3};
  DecisionTree tree(TreeConfig{.max_depth = 2});
  tree.Fit(x, y, rows, nullptr);
  EXPECT_NEAR(tree.Predict({0.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({3.0}), 10.0, 1e-9);
}

TEST(DecisionTreeTest, FeatureSubsamplingStillFits) {
  Rng rng(3);
  Matrix x = Matrix::Gaussian(300, 6, &rng);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) y[i] = x(i, 2);
  TreeConfig config;
  config.max_depth = 6;
  config.max_features = 2;
  DecisionTree tree(config);
  tree.Fit(x, y, AllRows(300), &rng);
  // With random 2-of-6 features per split and depth 6, feature 2 is found.
  double err = 0.0;
  for (size_t i = 0; i < 300; ++i) {
    const double d = tree.Predict(x.Row(i)) - y[i];
    err += d * d;
  }
  EXPECT_LT(err / 300.0, VarianceOf(y) * 0.9);
}

// --- Exact-engine bit-identity against the per-node-sort formulation --------

// Independent reference CART in the historical formulation the exact engine
// must reproduce bit for bit: every node gathers its (value, y) pairs, sorts
// them with std::sort (pair's value-then-y order), scans run boundaries, and
// partitions rows with std::partition on col <= threshold. Node layout and
// DebugString format mirror DecisionTree so the golden comparison is a
// string diff.
class ReferenceSortTree {
 public:
  explicit ReferenceSortTree(const TreeConfig& config) : config_(config) {}

  void Fit(const Matrix& x, const std::vector<double>& y,
           const std::vector<size_t>& rows, Rng* rng) {
    x_ = &x;
    y_ = &y;
    rng_ = rng;
    nodes_.clear();
    std::vector<size_t> working = rows;
    Build(&working, 0, working.size(), 0);
  }

  std::string DebugString() const {
    std::string out;
    char line[192];
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const Node& nd = nodes_[i];
      if (nd.is_leaf) {
        std::snprintf(line, sizeof(line), "%zu: leaf value=%.17g depth=%d\n",
                      i, nd.value, nd.depth);
      } else {
        std::snprintf(line, sizeof(line),
                      "%zu: f=%zu t=%.17g l=%d r=%d depth=%d\n", i, nd.feature,
                      nd.threshold, nd.left, nd.right, nd.depth);
      }
      out += line;
    }
    return out;
  }

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;
    size_t feature = 0;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int depth = 0;
  };

  int Build(std::vector<size_t>* rows, size_t begin, size_t end, int depth) {
    const Matrix& x = *x_;
    const std::vector<double>& y = *y_;
    const size_t n = end - begin;
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = begin; i < end; ++i) {
      sum += y[(*rows)[i]];
      sum_sq += y[(*rows)[i]] * y[(*rows)[i]];
    }
    const int node_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_index].value = sum / static_cast<double>(n);
    nodes_[node_index].depth = depth;
    const double impurity = sum_sq - sum * sum / static_cast<double>(n);
    if (depth >= config_.max_depth || n < config_.min_samples_split ||
        impurity <= 1e-12) {
      return node_index;
    }

    std::vector<size_t> features;
    if (config_.max_features == 0 || config_.max_features >= x.cols()) {
      features.resize(x.cols());
      std::iota(features.begin(), features.end(), 0);
    } else {
      features = rng_->SampleWithoutReplacement(x.cols(),
                                                config_.max_features);
    }

    bool found = false;
    size_t best_feature = 0;
    double best_threshold = 0.0;
    double best_score = -std::numeric_limits<double>::infinity();
    std::vector<std::pair<double, double>> pairs(n);
    for (size_t f : features) {
      for (size_t i = 0; i < n; ++i) {
        const size_t r = (*rows)[begin + i];
        pairs[i] = {x(r, f), y[r]};
      }
      std::sort(pairs.begin(), pairs.end());
      double left_sum = 0.0;
      for (size_t i = 0; i + 1 < n; ++i) {
        left_sum += pairs[i].second;
        if (pairs[i].first == pairs[i + 1].first) continue;
        const size_t n_left = i + 1;
        const size_t n_right = n - n_left;
        if (n_left < config_.min_samples_leaf ||
            n_right < config_.min_samples_leaf) {
          continue;
        }
        const double right_sum = sum - left_sum;
        const double score =
            left_sum * left_sum / static_cast<double>(n_left) +
            right_sum * right_sum / static_cast<double>(n_right);
        if (score > best_score) {
          found = true;
          best_score = score;
          best_feature = f;
          best_threshold = 0.5 * (pairs[i].first + pairs[i + 1].first);
        }
      }
    }
    if (!found) return node_index;

    auto middle =
        std::partition(rows->begin() + static_cast<long>(begin),
                       rows->begin() + static_cast<long>(end), [&](size_t r) {
                         return x(r, best_feature) <= best_threshold;
                       });
    const size_t mid = static_cast<size_t>(middle - rows->begin());
    const int left = Build(rows, begin, mid, depth + 1);
    const int right = Build(rows, mid, end, depth + 1);
    nodes_[node_index].is_leaf = false;
    nodes_[node_index].feature = best_feature;
    nodes_[node_index].threshold = best_threshold;
    nodes_[node_index].left = left;
    nodes_[node_index].right = right;
    return node_index;
  }

  TreeConfig config_;
  const Matrix* x_ = nullptr;
  const std::vector<double>* y_ = nullptr;
  Rng* rng_ = nullptr;
  std::vector<Node> nodes_;
};

// Tie-heavy data (values quantized to a coarse grid) so equal-value runs,
// the hardest part of the bit-identity argument, dominate the walk.
Matrix TieHeavyMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix x(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      x(r, c) = std::floor(rng.NextUniform(0.0, 8.0)) / 4.0;
    }
  }
  return x;
}

TEST(DecisionTreeTest, ExactEngineBitIdenticalToPerNodeSortReference) {
  const size_t n = 300;
  Matrix x = TieHeavyMatrix(n, 5, 101);
  Rng rng(102);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = x(i, 1) - 0.5 * x(i, 3) + rng.NextGaussian(0.0, 0.3);
  }
  // Bootstrap-style rows: duplicates and omissions.
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = rng.NextBelow(n);

  TreeConfig config;
  config.max_depth = 6;
  config.min_samples_leaf = 2;
  config.engine = TreeEngineChoice::kExact;
  DecisionTree tree(config);
  tree.Fit(x, y, rows, nullptr);
  ReferenceSortTree reference(config);
  reference.Fit(x, y, rows, nullptr);
  EXPECT_EQ(tree.DebugString(), reference.DebugString());
}

TEST(DecisionTreeTest, ExactEngineBitIdenticalWithFeatureSampling) {
  const size_t n = 250;
  Matrix x = TieHeavyMatrix(n, 6, 201);
  Rng rng(202);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) * x(i, 4) + rng.NextGaussian(0.0, 0.2);
  }
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = rng.NextBelow(n);

  TreeConfig config;
  config.max_depth = 5;
  config.min_samples_leaf = 2;
  config.max_features = 2;
  config.engine = TreeEngineChoice::kExact;
  // Identical recursion order means identical RNG draw order, so seeding
  // both fits the same way must give identical feature subsets per node.
  Rng tree_rng(77);
  DecisionTree tree(config);
  tree.Fit(x, y, rows, &tree_rng);
  Rng ref_rng(77);
  ReferenceSortTree reference(config);
  reference.Fit(x, y, rows, &ref_rng);
  EXPECT_EQ(tree.DebugString(), reference.DebugString());
}

TEST(DecisionTreeTest, SortedOrdersBreakValueTiesByRowIndex) {
  // Regression for sort-tie nondeterminism: the pre-sort key is explicitly
  // (value, row index), never std::sort's whim on equal keys.
  Matrix x(8, 2);
  const double vals[8] = {1.0, 0.0, 1.0, 0.0, 2.0, 1.0, 0.0, 2.0};
  for (size_t r = 0; r < 8; ++r) {
    x(r, 0) = vals[r];
    x(r, 1) = 3.0;  // fully constant column: order must be 0..n-1
  }
  FeatureColumns columns(x);
  columns.EnsureSortedOrders();
  const uint32_t* ord = columns.SortedOrder(0);
  const std::vector<uint32_t> want = {1, 3, 6, 0, 2, 5, 4, 7};
  EXPECT_EQ(std::vector<uint32_t>(ord, ord + 8), want);
  const uint32_t* constant = columns.SortedOrder(1);
  for (uint32_t r = 0; r < 8; ++r) EXPECT_EQ(constant[r], r);
}

TEST(DecisionTreeTest, ExactFitDeterministicAcrossRepeatsAndFitForms) {
  const size_t n = 200;
  Matrix x = TieHeavyMatrix(n, 4, 301);
  Rng rng(302);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = x(i, 2) + rng.NextGaussian(0.0, 0.1);

  TreeConfig config;
  config.max_depth = 6;
  config.engine = TreeEngineChoice::kExact;
  DecisionTree via_matrix(config);
  via_matrix.Fit(x, y, AllRows(n), nullptr);
  DecisionTree again(config);
  again.Fit(x, y, AllRows(n), nullptr);
  EXPECT_EQ(via_matrix.DebugString(), again.DebugString());

  FeatureColumns columns(x);
  columns.EnsureSortedOrders();
  DecisionTree via_columns(config);
  via_columns.Fit(columns, y, AllRows(n), nullptr);
  EXPECT_EQ(via_matrix.DebugString(), via_columns.DebugString());
}

// --- Histogram engine --------------------------------------------------------

TEST(DecisionTreeTest, HistEngineRecoversSingleSplit) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    y[i] = x(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  TreeConfig config;
  config.max_depth = 1;
  config.engine = TreeEngineChoice::kHist;
  DecisionTree tree(config);
  tree.Fit(x, y, AllRows(100), nullptr);
  EXPECT_DOUBLE_EQ(tree.Predict({0.2}), 0.0);
  EXPECT_DOUBLE_EQ(tree.Predict({0.9}), 1.0);
}

TEST(DecisionTreeTest, HistEngineCloseToExactOnSmoothTarget) {
  const size_t n = 500;
  Rng rng(401);
  Matrix x = Matrix::Gaussian(n, 4, &rng);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 2.0 * x(i, 1) - x(i, 3) + rng.NextGaussian(0.0, 0.1);
  }
  TreeConfig exact_config;
  exact_config.max_depth = 5;
  exact_config.engine = TreeEngineChoice::kExact;
  DecisionTree exact(exact_config);
  exact.Fit(x, y, AllRows(n), nullptr);
  TreeConfig hist_config = exact_config;
  hist_config.engine = TreeEngineChoice::kHist;
  DecisionTree hist(hist_config);
  hist.Fit(x, y, AllRows(n), nullptr);

  auto mse = [&](const DecisionTree& tree) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = tree.Predict(x.Row(i)) - y[i];
      acc += d * d;
    }
    return acc / static_cast<double>(n);
  };
  // 256 quantile bins on 500 rows: thresholds quantize, the fit barely
  // moves. 15% headroom over exact keeps this robust without being vacuous.
  EXPECT_LE(mse(hist), mse(exact) * 1.15 + 1e-12);
}

TEST(DecisionTreeTest, HistEngineHandlesBootstrapMultiplicityAndFewBins) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  std::vector<double> y = {0, 0, 10, 10};
  std::vector<size_t> rows = {0, 0, 0, 2, 2, 3};
  TreeConfig config;
  config.max_depth = 2;
  config.engine = TreeEngineChoice::kHist;
  config.max_bins = 4;
  DecisionTree tree(config);
  tree.Fit(x, y, rows, nullptr);
  EXPECT_NEAR(tree.Predict({0.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({3.0}), 10.0, 1e-9);
}

TEST(DecisionTreeTest, HistEngineConstantFeatureIsLeaf) {
  Matrix x(20, 1);
  std::vector<double> y(20);
  for (size_t i = 0; i < 20; ++i) {
    x(i, 0) = 1.0;  // no bin edges: no split possible
    y[i] = static_cast<double>(i % 2);
  }
  TreeConfig config;
  config.max_depth = 3;
  config.engine = TreeEngineChoice::kHist;
  DecisionTree tree(config);
  tree.Fit(x, y, AllRows(20), nullptr);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({1.0}), 0.5);
}

}  // namespace
}  // namespace tg::ml
