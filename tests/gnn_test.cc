#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "gnn/gat.h"
#include "gnn/link_prediction.h"
#include "gnn/sage.h"
#include "numeric/stats.h"
#include "util/rng.h"

namespace tg::gnn {
namespace {

Graph TwoCommunities() {
  Graph g;
  for (int i = 0; i < 12; ++i) {
    g.AddNode(i % 2 == 0 ? NodeType::kDataset : NodeType::kModel,
              "n" + std::to_string(i));
  }
  auto clique = [&](NodeId lo, NodeId hi, double w) {
    for (NodeId a = lo; a <= hi; ++a) {
      for (NodeId b = a + 1; b <= hi; ++b) {
        g.AddUndirectedEdge(a, b, EdgeType::kDatasetDataset, w);
      }
    }
  };
  clique(0, 5, 1.0);
  clique(6, 11, 1.0);
  g.AddUndirectedEdge(5, 6, EdgeType::kDatasetDataset, 0.1);
  return g;
}

TEST(EdgeIndexTest, BothDirectionsAndSelfLoops) {
  Graph g = TwoCommunities();
  EdgeIndex with_loops = BuildEdgeIndex(g, /*add_self_loops=*/true);
  EdgeIndex without = BuildEdgeIndex(g, /*add_self_loops=*/false);
  EXPECT_EQ(without.src.size(), 2 * g.num_undirected_edges());
  EXPECT_EQ(with_loops.src.size(),
            2 * g.num_undirected_edges() + g.num_nodes());
  EXPECT_EQ(with_loops.num_nodes, g.num_nodes());
}

TEST(GraphSageTest, OutputShape) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(1);
  SageConfig config;
  config.hidden_dim = 8;
  config.output_dim = 6;
  GraphSage encoder(edges, /*in_dim=*/5, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 5, &rng);
  autograd::Var out = encoder.Encode(autograd::MakeConstant(features));
  EXPECT_EQ(out->value().rows(), g.num_nodes());
  EXPECT_EQ(out->value().cols(), 6u);
  EXPECT_FALSE(encoder.Parameters().empty());
}

TEST(GraphSageTest, NormalizedOutputHasUnitRows) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(2);
  SageConfig config;
  config.normalize_output = true;
  config.output_dim = 8;
  GraphSage encoder(edges, 4, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 4, &rng);
  autograd::Var out = encoder.Encode(autograd::MakeConstant(features));
  for (size_t r = 0; r < out->value().rows(); ++r) {
    double norm = 0.0;
    for (size_t c = 0; c < out->value().cols(); ++c) {
      norm += out->value()(r, c) * out->value()(r, c);
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-6);
  }
}

TEST(GraphSageTest, GradientsFlowToAllParameters) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(3);
  SageConfig config;
  config.hidden_dim = 6;
  config.output_dim = 4;
  config.normalize_output = false;
  GraphSage encoder(edges, 3, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 3, &rng);
  autograd::Var out = encoder.Encode(autograd::MakeConstant(features));
  autograd::Var loss = autograd::Mean(autograd::Mul(out, out));
  autograd::Backward(loss);
  for (const auto& p : encoder.Parameters()) {
    EXPECT_FALSE(p->grad().empty());
  }
}

TEST(GatTest, OutputShapeMultiHead) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(4);
  GatConfig config;
  config.hidden_dim = 8;
  config.output_dim = 6;
  config.num_heads = 3;
  Gat encoder(edges, 5, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 5, &rng);
  autograd::Var out = encoder.Encode(autograd::MakeConstant(features));
  EXPECT_EQ(out->value().rows(), g.num_nodes());
  EXPECT_EQ(out->value().cols(), 6u);
}

TEST(GatTest, GradientsFlowThroughAttention) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(5);
  GatConfig config;
  config.hidden_dim = 4;
  config.output_dim = 4;
  config.num_heads = 2;
  Gat encoder(edges, 3, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 3, &rng);
  autograd::Var out = encoder.Encode(autograd::MakeConstant(features));
  autograd::Var loss = autograd::Mean(autograd::Mul(out, out));
  autograd::Backward(loss);
  for (const auto& p : encoder.Parameters()) {
    EXPECT_FALSE(p->grad().empty()) << "parameter missing gradient";
  }
}

TEST(LinkPredictionTest, LossDecreasesForSage) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(6);
  SageConfig sage_config;
  sage_config.hidden_dim = 16;
  sage_config.output_dim = 16;
  GraphSage encoder(edges, 4, sage_config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 4, &rng);

  LinkPredictionConfig config;
  config.epochs = 80;
  config.learning_rate = 1e-2;
  LinkPredictionResult result = TrainLinkPrediction(
      g, &encoder, features, /*labeled_negatives=*/{}, config, &rng);

  ASSERT_EQ(result.loss_curve.size(), 80u);
  // Average of last 10 losses well below first loss.
  double tail = 0.0;
  for (int i = 0; i < 10; ++i) tail += result.loss_curve[79 - i];
  tail /= 10.0;
  EXPECT_LT(tail, result.loss_curve.front() * 0.8);
  EXPECT_EQ(result.embeddings.rows(), g.num_nodes());
  EXPECT_EQ(result.embeddings.cols(), 16u);
}

TEST(LinkPredictionTest, EmbeddingsSeparateCommunities) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(7);
  SageConfig sage_config;
  sage_config.hidden_dim = 16;
  sage_config.output_dim = 8;
  GraphSage encoder(edges, 4, sage_config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 4, &rng);
  LinkPredictionConfig config;
  config.epochs = 120;
  config.learning_rate = 2e-2;
  Matrix emb = TrainLinkPrediction(g, &encoder, features, {}, config, &rng)
                   .embeddings;

  // Dot products should be larger within a community than across.
  auto dot = [&](size_t a, size_t b) {
    double acc = 0.0;
    for (size_t c = 0; c < emb.cols(); ++c) acc += emb(a, c) * emb(b, c);
    return acc;
  };
  double within = (dot(0, 1) + dot(1, 2) + dot(7, 8) + dot(9, 10)) / 4.0;
  double across = (dot(0, 8) + dot(1, 9) + dot(2, 10) + dot(3, 11)) / 4.0;
  EXPECT_GT(within, across);
}

// Finite-difference check of d(loss)/d(param) through a whole encoder:
// perturbs a few entries of every parameter and compares against autograd.
template <typename EncoderT>
void CheckEncoderGradients(EncoderT* encoder, const Matrix& features,
                           double tol) {
  auto loss_of = [&]() {
    autograd::Var out =
        encoder->Encode(autograd::MakeConstant(features));
    return autograd::Mean(autograd::Mul(out, out));
  };
  autograd::Var loss = loss_of();
  autograd::Backward(loss);

  const double eps = 1e-6;
  Rng pick(99);
  for (const autograd::Var& param : encoder->Parameters()) {
    ASSERT_FALSE(param->grad().empty());
    for (int trial = 0; trial < 3; ++trial) {
      const size_t r = pick.NextBelow(param->value().rows());
      const size_t c = pick.NextBelow(param->value().cols());
      const double original = param->value()(r, c);
      param->mutable_value()(r, c) = original + eps;
      const double plus = loss_of()->value()(0, 0);
      param->mutable_value()(r, c) = original - eps;
      const double minus = loss_of()->value()(0, 0);
      param->mutable_value()(r, c) = original;
      const double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(param->grad()(r, c), numeric, tol);
    }
  }
}

TEST(GraphSageTest, EndToEndGradientsMatchFiniteDifferences) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(31);
  SageConfig config;
  config.hidden_dim = 5;
  config.output_dim = 4;
  config.normalize_output = false;  // keep the loss surface smooth
  GraphSage encoder(edges, 3, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 3, &rng);
  CheckEncoderGradients(&encoder, features, 1e-5);
}

TEST(GatTest, EndToEndGradientsMatchFiniteDifferences) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(33);
  GatConfig config;
  config.hidden_dim = 4;
  config.output_dim = 3;
  config.num_heads = 2;
  Gat encoder(edges, 3, config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 3, &rng);
  CheckEncoderGradients(&encoder, features, 1e-5);
}

TEST(LinkPredictionTest, LabeledNegativesAccepted) {
  Graph g = TwoCommunities();
  EdgeIndex edges = BuildEdgeIndex(g, true);
  Rng rng(8);
  GatConfig gat_config;
  gat_config.hidden_dim = 8;
  gat_config.output_dim = 8;
  gat_config.num_heads = 1;
  Gat encoder(edges, 4, gat_config, &rng);
  Matrix features = Matrix::Gaussian(g.num_nodes(), 4, &rng);
  std::vector<std::pair<NodeId, NodeId>> negatives = {{0, 7}, {2, 9}};
  LinkPredictionConfig config;
  config.epochs = 10;
  LinkPredictionResult result =
      TrainLinkPrediction(g, &encoder, features, negatives, config, &rng);
  EXPECT_EQ(result.loss_curve.size(), 10u);
  EXPECT_TRUE(std::isfinite(result.loss_curve.back()));
}

}  // namespace
}  // namespace tg::gnn
