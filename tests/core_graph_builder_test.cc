#include <memory>

#include <gtest/gtest.h>

#include "core/graph_builder.h"
#include "graph/graph_stats.h"

namespace tg::core {
namespace {

class GraphBuilderTest : public ::testing::Test {
 protected:
  GraphBuilderTest() {
    zoo::ModelZooConfig config;
    config.catalog.num_image_models = 40;
    config.catalog.num_text_models = 24;
    config.world.max_samples_per_dataset = 80;
    zoo_ = std::make_unique<zoo::ModelZoo>(config);
  }

  std::unique_ptr<zoo::ModelZoo> zoo_;
};

TEST_F(GraphBuilderTest, NodeCountsMatchModality) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  // 73 image datasets + 40 image models.
  EXPECT_EQ(built.graph.num_nodes(), 73u + 40u);
  EXPECT_EQ(built.dataset_node.size(), 73u);
  EXPECT_EQ(built.model_node.size(), 40u);
}

TEST_F(GraphBuilderTest, DatasetPairsFullyConnected) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kText,
                                        GraphBuildOptions{});
  GraphStats stats = ComputeGraphStats(built.graph);
  // 24 text datasets -> 24*23 ordered D-D pairs (Table II convention).
  EXPECT_EQ(stats.dataset_dataset_edges, 24u * 23u);
}

TEST_F(GraphBuilderTest, ThresholdPrunesRoughlyHalfTheHistory) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  GraphStats stats = ComputeGraphStats(built.graph);
  // History: 40 models x 12 public datasets, threshold 0.5 on min-max
  // normalized accuracy keeps roughly half; plus 40 pretrain edges.
  const size_t history_kept = stats.model_dataset_accuracy_edges - 40;
  EXPECT_GT(history_kept, 40u * 12u / 4);
  EXPECT_LT(history_kept, 40u * 12u * 3 / 4);
  // Negative pairs complement the kept history edges.
  EXPECT_EQ(built.negative_edges.size() + history_kept, 40u * 12u);
}

TEST_F(GraphBuilderTest, TransferabilityEdgesPruned) {
  GraphBuildOptions options;
  options.include_accuracy_edges = false;
  BuiltGraph built =
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, options);
  GraphStats stats = ComputeGraphStats(built.graph);
  EXPECT_EQ(stats.model_dataset_accuracy_edges, 0u);
  EXPECT_GT(stats.model_dataset_transferability_edges, 0u);
  EXPECT_LT(stats.model_dataset_transferability_edges, 40u * 12u);
}

TEST_F(GraphBuilderTest, LeaveOneOutDropsTargetEdges) {
  const size_t target = zoo_->EvaluationTargets(zoo::Modality::kImage)[0];
  GraphBuildOptions options;
  options.exclude_target = target;
  BuiltGraph built =
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, options);
  const NodeId target_node = built.dataset_node.at(target);
  // The target keeps only D-D similarity edges.
  for (const Neighbor& n : built.graph.neighbors(target_node)) {
    EXPECT_EQ(n.type, EdgeType::kDatasetDataset);
  }
  // And no labeled negatives touch the target.
  for (const auto& [m, d] : built.negative_edges) {
    EXPECT_NE(d, target_node);
    EXPECT_NE(m, target_node);
  }
}

TEST_F(GraphBuilderTest, HistoryRatioReducesEdges) {
  GraphBuildOptions full;
  GraphBuildOptions third;
  third.history_ratio = 0.3;
  GraphStats full_stats = ComputeGraphStats(
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, full).graph);
  GraphStats third_stats = ComputeGraphStats(
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, third).graph);
  EXPECT_LT(third_stats.model_dataset_accuracy_edges,
            full_stats.model_dataset_accuracy_edges);
}

TEST_F(GraphBuilderTest, NoHistoryScenario) {
  // Paper §VII-C: no training history, transferability edges only.
  GraphBuildOptions options;
  options.include_accuracy_edges = false;
  BuiltGraph built =
      BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage, options);
  GraphStats stats = ComputeGraphStats(built.graph);
  EXPECT_EQ(stats.model_dataset_accuracy_edges, 0u);
  EXPECT_TRUE(built.negative_edges.empty());
}

TEST_F(GraphBuilderTest, GraphIsConnectedWithDefaults) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  EXPECT_EQ(built.graph.CountConnectedComponents(), 1u);
}

TEST_F(GraphBuilderTest, EdgeWeightsWithinBounds) {
  BuiltGraph built = BuildModelZooGraph(zoo_.get(), zoo::Modality::kImage,
                                        GraphBuildOptions{});
  for (const EdgeRecord& e : built.graph.edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace tg::core
